"""The 3D Gaussian scene representation (``GaussianCloud``).

Each Gaussian carries the trainable parameters of Eq. 1 in the paper: 3D mean
``mu``, covariance ``Sigma`` (factored as scale + rotation), opacity ``o`` and
colour.  The cloud also tracks a boolean ``active`` mask used by RTGS's
mask-then-prune strategy (Sec. 4.1): masked Gaussians are excluded from
rendering for ``K`` iterations before being permanently removed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.se3 import SE3, quaternion_to_rotation
from repro.utils.validation import check_array, check_finite, check_shape

# Storage cost per Gaussian, in bytes, mirroring the float32 CUDA layout:
# mean (3) + scale (3) + quaternion (4) + opacity (1) + colour (3) = 14 floats.
BYTES_PER_GAUSSIAN = 14 * 4

# Distinguishes clouds (and their copies) from one another so epoch-keyed
# caches cannot confuse two clouds that happen to share an epoch value.
_CLOUD_UIDS = itertools.count()


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


def _logit(p: np.ndarray) -> np.ndarray:
    p = np.clip(p, 1e-6, 1.0 - 1e-6)
    return np.log(p / (1.0 - p))


@dataclass
class GaussianCloud:
    """A differentiable set of 3D Gaussians.

    Attributes
    ----------
    positions:
        ``(N, 3)`` means in world coordinates.
    log_scales:
        ``(N, 3)`` log of the per-axis standard deviations.
    rotations:
        ``(N, 4)`` unit quaternions ``(w, x, y, z)`` (normalised lazily).
    opacity_logits:
        ``(N,)`` pre-sigmoid opacities.
    colors:
        ``(N, 3)`` base RGB colours in ``[0, 1]`` (the SH DC term).
    active:
        ``(N,)`` mask-prune flags; inactive Gaussians are skipped by the
        rasterizer but still counted in memory until removed.
    """

    positions: np.ndarray
    log_scales: np.ndarray
    rotations: np.ndarray
    opacity_logits: np.ndarray
    colors: np.ndarray
    active: np.ndarray = field(default=None)

    def __post_init__(self) -> None:
        self.positions = check_shape(
            check_array(self.positions, "positions"), (None, 3), "positions"
        )
        n = self.positions.shape[0]
        self.log_scales = check_shape(
            check_array(self.log_scales, "log_scales"), (n, 3), "log_scales"
        )
        self.rotations = check_shape(
            check_array(self.rotations, "rotations"), (n, 4), "rotations"
        )
        self.opacity_logits = check_shape(
            check_array(self.opacity_logits, "opacity_logits"), (n,), "opacity_logits"
        )
        self.colors = check_shape(check_array(self.colors, "colors"), (n, 3), "colors")
        if self.active is None:
            self.active = np.ones(n, dtype=bool)
        else:
            self.active = np.asarray(self.active, dtype=bool).reshape(n)
        for name in ("positions", "log_scales", "rotations", "opacity_logits", "colors"):
            check_finite(getattr(self, name), name)
        # -- geometry-cache bookkeeping (see repro.gaussians.geom_cache) ----
        # ``epoch`` increments on every mutation, ``structure_epoch`` only when
        # the row set / active mask changes (densify, prune, mask).  The
        # cumulative deltas upper-bound how far parameters drifted since any
        # given epoch (sum of per-step max |delta|, by the triangle
        # inequality), which is what the cache's screen-space tolerance check
        # consumes without re-projecting.
        self._uid = next(_CLOUD_UIDS)
        self._epoch = 0
        self._structure_epoch = 0
        # Epoch of the most recent mutation with no movement bound (a direct
        # array edit reported via bump_epoch): caches must fully rebuild any
        # state built before it rather than trust the cumulative deltas.
        self._unbounded_epoch = 0
        self._cum_position_delta = 0.0
        self._cum_log_scale_delta = 0.0
        self._cum_opacity_delta = 0.0

    # -- mutation epochs ------------------------------------------------------
    @property
    def uid(self) -> int:
        """Identity token distinguishing this cloud from all others (and copies)."""
        return self._uid

    @property
    def epoch(self) -> int:
        """Monotonic counter bumped by every geometry-mutating operation."""
        return self._epoch

    @property
    def structure_epoch(self) -> int:
        """Monotonic counter bumped when the row set or active mask changes."""
        return self._structure_epoch

    @property
    def cum_position_delta(self) -> float:
        """Upper bound on total position movement (world units) over all epochs."""
        return self._cum_position_delta

    @property
    def cum_log_scale_delta(self) -> float:
        """Upper bound on total log-scale movement over all epochs."""
        return self._cum_log_scale_delta

    @property
    def cum_opacity_delta(self) -> float:
        """Upper bound on total opacity-logit movement over all epochs."""
        return self._cum_opacity_delta

    @property
    def unbounded_epoch(self) -> int:
        """Epoch of the latest mutation whose movement could not be bounded."""
        return self._unbounded_epoch

    def bump_epoch(self, structural: bool = False) -> int:
        """Mark the cloud mutated; callers that write arrays directly must call this.

        ``structural=True`` additionally invalidates row-set-dependent caches
        (use it after resizing arrays or editing ``active`` in place).  The
        mutating methods below call this automatically.  Either way the edit
        carries no movement bound, so epoch-keyed caches rebuild anything
        predating it instead of reusing under a tolerance; state built
        *afterwards* is unaffected.
        """
        self._epoch += 1
        self._unbounded_epoch = self._epoch
        if structural:
            self._structure_epoch = self._epoch
        return self._epoch

    def _bump_structural(self) -> None:
        """Structural change through a tracked method: movement bounds stay finite.

        Tracked structural mutations (extend / keep_only / mask) change *which*
        rows exist, which epoch-keyed caches must treat as a full rebuild
        anyway, so the cumulative per-parameter deltas need no poisoning.
        """
        self._epoch += 1
        self._structure_epoch = self._epoch

    # -- constructors ------------------------------------------------------
    @staticmethod
    def empty() -> "GaussianCloud":
        """Return a cloud with zero Gaussians."""
        return GaussianCloud(
            positions=np.zeros((0, 3)),
            log_scales=np.zeros((0, 3)),
            rotations=np.zeros((0, 4)),
            opacity_logits=np.zeros(0),
            colors=np.zeros((0, 3)),
        )

    @staticmethod
    def from_points(
        points: np.ndarray,
        colors: np.ndarray,
        scale: float | np.ndarray = 0.05,
        opacity: float = 0.7,
    ) -> "GaussianCloud":
        """Create isotropic Gaussians at ``points`` with ``colors``.

        ``scale`` may be a scalar or a per-point array of standard deviations.
        """
        points = check_shape(check_array(points, "points"), (None, 3), "points")
        n = points.shape[0]
        colors = check_shape(check_array(colors, "colors"), (n, 3), "colors")
        scales = np.broadcast_to(np.asarray(scale, dtype=np.float64).reshape(-1, 1), (n, 3))
        rotations = np.zeros((n, 4))
        rotations[:, 0] = 1.0
        return GaussianCloud(
            positions=points.copy(),
            log_scales=np.log(np.maximum(scales, 1e-6)),
            rotations=rotations,
            opacity_logits=np.full(n, _logit(np.asarray(opacity))),
            colors=np.clip(colors, 0.0, 1.0),
        )

    @staticmethod
    def from_rgbd(
        image: np.ndarray,
        depth: np.ndarray,
        camera: Camera,
        pose_cw: SE3,
        stride: int = 4,
        depth_noise: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> "GaussianCloud":
        """Initialise Gaussians by back-projecting a (possibly strided) RGB-D frame.

        This mirrors how 3DGS-SLAM mapping seeds new Gaussians from the current
        observation.  The Gaussian scale is set from the local pixel footprint
        (``depth / fx * stride``), so nearby Gaussians are small and distant
        ones large.
        """
        image = np.asarray(image, dtype=np.float64)
        depth = np.asarray(depth, dtype=np.float64)
        if image.shape[:2] != depth.shape:
            raise ValueError(
                f"image {image.shape[:2]} and depth {depth.shape} resolutions differ"
            )
        vs = np.arange(0, camera.height, stride)
        us = np.arange(0, camera.width, stride)
        grid_u, grid_v = np.meshgrid(us, vs)
        pix = np.stack([grid_u.ravel() + 0.5, grid_v.ravel() + 0.5], axis=1)
        d = depth[grid_v.ravel(), grid_u.ravel()]
        # Reject invalid and implausibly close depths (sensor minimum range).
        valid = d > 0.15
        pix, d = pix[valid], d[valid]
        if rng is not None and depth_noise > 0:
            d = d + rng.normal(0.0, depth_noise, size=d.shape)
            d = np.maximum(d, 1e-3)
        cols = image[grid_v.ravel(), grid_u.ravel()][valid]
        points_cam = camera.unproject(pix, d)
        points_world = pose_cw.inverse().apply(points_cam)
        scales = d / camera.fx * stride * 0.7
        return GaussianCloud.from_points(points_world, cols, scale=scales, opacity=0.7)

    # -- derived quantities --------------------------------------------------
    def __len__(self) -> int:
        return self.positions.shape[0]

    @property
    def n_total(self) -> int:
        """Number of Gaussians including masked (inactive) ones."""
        return len(self)

    @property
    def n_active(self) -> int:
        """Number of Gaussians that participate in rendering."""
        return int(np.count_nonzero(self.active))

    def opacities(self, rows: np.ndarray | None = None) -> np.ndarray:
        """Return opacities in ``(0, 1)``, optionally only for ``rows``."""
        logits = self.opacity_logits if rows is None else self.opacity_logits[rows]
        return _sigmoid(logits)

    def scales(self, rows: np.ndarray | None = None) -> np.ndarray:
        """Return per-axis standard deviations, optionally only for ``rows``."""
        log_scales = self.log_scales if rows is None else self.log_scales[rows]
        return np.exp(log_scales)

    def rotation_matrices(self, rows: np.ndarray | None = None) -> np.ndarray:
        """Return ``(N, 3, 3)`` rotation matrices from the stored quaternions.

        ``rows`` restricts the computation to a subset (projection and the
        batched backward only need the visible rows); row-wise results are
        identical to indexing the full array.
        """
        quaternions = self.rotations if rows is None else self.rotations[rows]
        if quaternions.shape[0] == 0:
            return np.zeros((0, 3, 3))
        return quaternion_to_rotation(quaternions)

    def covariances(self, rows: np.ndarray | None = None) -> np.ndarray:
        """Return ``(N, 3, 3)`` world-frame covariance matrices ``R S S^T R^T``."""
        rot = self.rotation_matrices(rows)
        scale = self.scales(rows)
        rs = rot * scale[:, None, :]
        return rs @ np.transpose(rs, (0, 2, 1))

    def memory_bytes(self, include_inactive: bool = True) -> int:
        """Estimate parameter memory (the paper's "peak Gaussian memory capacity")."""
        count = self.n_total if include_inactive else self.n_active
        return count * BYTES_PER_GAUSSIAN

    # -- mutation ------------------------------------------------------------
    def copy(self) -> "GaussianCloud":
        """Deep copy of all parameter arrays."""
        return GaussianCloud(
            positions=self.positions.copy(),
            log_scales=self.log_scales.copy(),
            rotations=self.rotations.copy(),
            opacity_logits=self.opacity_logits.copy(),
            colors=self.colors.copy(),
            active=self.active.copy(),
        )

    def snapshot_copy(self) -> "GaussianCloud":
        """Deep copy that *preserves* identity and epoch bookkeeping.

        :meth:`copy` deliberately mints a fresh ``uid`` (a copy is a new
        cloud whose mutations diverge).  Publication in the async SLAM
        pipeline needs the opposite: the tracker renders a frozen snapshot
        whose content is bitwise the live cloud *at this epoch*, so geometry
        cache entries keyed by ``(uid, epochs, deltas)`` stay coherent
        between the published snapshot and the mapper's live cloud until the
        mapper actually mutates.  The snapshot shares no arrays with the
        live cloud — later optimiser steps cannot bleed into a frame being
        tracked — but it answers to the same cache keys.
        """
        snapshot = self.copy()
        snapshot._uid = self._uid
        snapshot._epoch = self._epoch
        snapshot._structure_epoch = self._structure_epoch
        snapshot._unbounded_epoch = self._unbounded_epoch
        snapshot._cum_position_delta = self._cum_position_delta
        snapshot._cum_log_scale_delta = self._cum_log_scale_delta
        snapshot._cum_opacity_delta = self._cum_opacity_delta
        return snapshot

    def extend(self, other: "GaussianCloud") -> None:
        """Append all Gaussians from ``other`` (used by mapping densification)."""
        self.positions = np.concatenate([self.positions, other.positions], axis=0)
        self.log_scales = np.concatenate([self.log_scales, other.log_scales], axis=0)
        self.rotations = np.concatenate([self.rotations, other.rotations], axis=0)
        self.opacity_logits = np.concatenate(
            [self.opacity_logits, other.opacity_logits], axis=0
        )
        self.colors = np.concatenate([self.colors, other.colors], axis=0)
        self.active = np.concatenate([self.active, other.active], axis=0)
        self._bump_structural()

    def mask(self, indices: np.ndarray) -> None:
        """Mark ``indices`` as inactive (mask-prune step, Sec. 4.1)."""
        self.active[np.asarray(indices, dtype=int)] = False
        self._bump_structural()

    def unmask_all(self) -> None:
        """Re-activate every Gaussian (used when a pruning decision is rolled back)."""
        self.active[:] = True
        self._bump_structural()

    def remove(self, indices: np.ndarray) -> None:
        """Permanently delete the Gaussians at ``indices``."""
        keep = np.ones(len(self), dtype=bool)
        keep[np.asarray(indices, dtype=int)] = False
        self.keep_only(keep)

    def remove_inactive(self) -> int:
        """Permanently delete all masked Gaussians; returns the count removed."""
        removed = int(np.count_nonzero(~self.active))
        self.keep_only(self.active.copy())
        return removed

    def keep_only(self, keep_mask: np.ndarray) -> None:
        """Retain only Gaussians where ``keep_mask`` is True."""
        keep_mask = np.asarray(keep_mask, dtype=bool).reshape(len(self))
        self.positions = self.positions[keep_mask]
        self.log_scales = self.log_scales[keep_mask]
        self.rotations = self.rotations[keep_mask]
        self.opacity_logits = self.opacity_logits[keep_mask]
        self.colors = self.colors[keep_mask]
        self.active = self.active[keep_mask]
        self._bump_structural()

    def active_indices(self) -> np.ndarray:
        """Return indices of active Gaussians."""
        return np.flatnonzero(self.active)

    def apply_parameter_step(
        self,
        d_positions: np.ndarray | None = None,
        d_log_scales: np.ndarray | None = None,
        d_opacity_logits: np.ndarray | None = None,
        d_colors: np.ndarray | None = None,
    ) -> None:
        """Apply additive updates to the parameter arrays (gradient-descent step).

        Updates are given for *all* Gaussians (same length as the cloud); callers
        zero out the entries of masked Gaussians.
        """
        mutated = False
        if d_positions is not None:
            self.positions = self.positions + d_positions
            if np.size(d_positions):
                self._cum_position_delta += float(np.max(np.abs(d_positions)))
            mutated = True
        if d_log_scales is not None:
            self.log_scales = np.clip(self.log_scales + d_log_scales, -12.0, 4.0)
            if np.size(d_log_scales):
                self._cum_log_scale_delta += float(np.max(np.abs(d_log_scales)))
            mutated = True
        if d_opacity_logits is not None:
            self.opacity_logits = np.clip(self.opacity_logits + d_opacity_logits, -12.0, 12.0)
            if np.size(d_opacity_logits):
                self._cum_opacity_delta += float(np.max(np.abs(d_opacity_logits)))
            mutated = True
        if d_colors is not None:
            self.colors = np.clip(self.colors + d_colors, 0.0, 1.0)
            mutated = True
        if mutated:
            self._epoch += 1
