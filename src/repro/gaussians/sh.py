"""Real spherical harmonics (SH) colour model.

3DGS stores view-dependent colour as SH coefficients per Gaussian.  The SLAM
pipelines in the paper use low SH degrees (degree 0 during mapping on edge
devices) for speed; we support degrees 0-2 with analytic gradients with
respect to the coefficients so mapping can optionally optimise them.
"""

from __future__ import annotations

import numpy as np

# Real SH basis constants (as in the reference 3DGS implementation).
SH_C0 = 0.28209479177387814
SH_C1 = 0.4886025119029199
SH_C2 = (
    1.0925484305920792,
    -1.0925484305920792,
    0.31539156525252005,
    -1.0925484305920792,
    0.5462742152960396,
)

_COEFFS_PER_DEGREE = {0: 1, 1: 4, 2: 9}


def n_sh_coeffs(degree: int) -> int:
    """Number of SH coefficients per colour channel for ``degree``."""
    if degree not in _COEFFS_PER_DEGREE:
        raise ValueError(f"SH degree must be 0, 1, or 2; got {degree}")
    return _COEFFS_PER_DEGREE[degree]


def sh_basis(directions: np.ndarray, degree: int) -> np.ndarray:
    """Evaluate the real SH basis for unit ``directions`` ``(N, 3)``.

    Returns an ``(N, n_coeffs)`` array.  Directions are normalised internally.
    """
    directions = np.atleast_2d(np.asarray(directions, dtype=np.float64))
    norms = np.linalg.norm(directions, axis=1, keepdims=True)
    norms = np.where(norms < 1e-12, 1.0, norms)
    d = directions / norms
    x, y, z = d[:, 0], d[:, 1], d[:, 2]
    n = d.shape[0]
    n_coeffs = n_sh_coeffs(degree)
    basis = np.zeros((n, n_coeffs))
    basis[:, 0] = SH_C0
    if degree >= 1:
        basis[:, 1] = -SH_C1 * y
        basis[:, 2] = SH_C1 * z
        basis[:, 3] = -SH_C1 * x
    if degree >= 2:
        basis[:, 4] = SH_C2[0] * x * y
        basis[:, 5] = SH_C2[1] * y * z
        basis[:, 6] = SH_C2[2] * (2.0 * z * z - x * x - y * y)
        basis[:, 7] = SH_C2[3] * x * z
        basis[:, 8] = SH_C2[4] * (x * x - y * y)
    return basis


def eval_sh(coefficients: np.ndarray, directions: np.ndarray, degree: int) -> np.ndarray:
    """Evaluate SH colour for each Gaussian along a viewing direction.

    Parameters
    ----------
    coefficients:
        ``(N, n_coeffs, 3)`` SH coefficients per Gaussian per channel.
    directions:
        ``(N, 3)`` viewing directions (Gaussian centre minus camera centre).
    degree:
        SH degree (0-2).

    Returns
    -------
    ``(N, 3)`` RGB colours clipped to ``[0, 1]``.  Following the 3DGS
    convention the DC term is offset by +0.5.
    """
    coefficients = np.asarray(coefficients, dtype=np.float64)
    n_coeffs = n_sh_coeffs(degree)
    if coefficients.ndim != 3 or coefficients.shape[2] != 3:
        raise ValueError(
            f"coefficients must have shape (N, n_coeffs, 3), got {coefficients.shape}"
        )
    if coefficients.shape[1] < n_coeffs:
        raise ValueError(
            f"degree {degree} requires {n_coeffs} coefficients, got {coefficients.shape[1]}"
        )
    basis = sh_basis(directions, degree)
    colours = np.einsum("nk,nkc->nc", basis, coefficients[:, :n_coeffs, :])
    return np.clip(colours + 0.5, 0.0, 1.0)


def eval_sh_gradient(
    dL_dcolours: np.ndarray, directions: np.ndarray, degree: int, n_total_coeffs: int
) -> np.ndarray:
    """Backpropagate colour gradients to SH coefficient gradients.

    The clipping in :func:`eval_sh` is ignored (treated as identity), matching
    the straight-through behaviour of the reference CUDA implementation.

    Returns an ``(N, n_total_coeffs, 3)`` gradient array, zero-padded beyond the
    active degree.
    """
    dL_dcolours = np.asarray(dL_dcolours, dtype=np.float64)
    basis = sh_basis(directions, degree)
    n = dL_dcolours.shape[0]
    grads = np.zeros((n, n_total_coeffs, 3))
    grads[:, : basis.shape[1], :] = basis[:, :, None] * dL_dcolours[:, None, :]
    return grads


def rgb_to_sh_dc(rgb: np.ndarray) -> np.ndarray:
    """Convert an RGB colour in [0, 1] to the SH DC coefficient producing it."""
    rgb = np.asarray(rgb, dtype=np.float64)
    return (rgb - 0.5) / SH_C0


def sh_dc_to_rgb(dc: np.ndarray) -> np.ndarray:
    """Convert SH DC coefficients to the RGB colour they produce."""
    dc = np.asarray(dc, dtype=np.float64)
    return np.clip(dc * SH_C0 + 0.5, 0.0, 1.0)
