"""3D Gaussian Splatting substrate: scene representation, rendering, backprop.

This package implements every step of the 3DGS pipeline described in Sec. 2.1
of the paper:

* Step 1 Preprocessing: :mod:`projection` (1-1) and :mod:`tiling` (1-2)
* Step 2 Sorting: :mod:`sorting`
* Step 3 Rendering: :mod:`rasterizer`
* Step 4 Rendering BP and Step 5 Preprocessing BP: :mod:`backward`

Rendering is driven through :class:`repro.engine.RenderEngine` (re-exported
here for convenience); the free functions ``rasterize`` /
``rasterize_batch`` / ``render_backward`` / ``render_backward_batch`` are
deprecated shims delegating to the process-default engine.  Implementation
internals (flat arenas, fragment lists, shared preprocessing, per-backend
entry points) remain importable from their submodules but are no longer part
of the public surface declared by ``__all__``.
"""

from repro.gaussians.backward import (
    CloudGradients,
    GradientTrace,
    ScreenSpaceGradients,
    render_backward,
)
from repro.gaussians.batch import (
    BatchGradients,
    BatchRenderResult,
    rasterize_batch,
    render_backward_batch,
)
from repro.gaussians.camera import Camera
from repro.gaussians.gaussian_model import BYTES_PER_GAUSSIAN, GaussianCloud
from repro.gaussians.geom_cache import (
    CacheStats,
    GeomCacheConfig,
    GeometryCache,
    geom_cache_enabled,
)
from repro.gaussians.projection import ProjectedGaussians
from repro.gaussians.rasterizer import (
    BACKENDS,
    DEFAULT_BACKEND,
    RenderResult,
    TileRenderCache,
    get_default_backend,
    rasterize,
    set_default_backend,
    use_backend,
)
from repro.gaussians.se3 import SE3, quaternion_to_rotation, rotation_to_quaternion
from repro.gaussians.sorting import TileIntersections
from repro.gaussians.tiling import TileGrid

# Now-internal symbols kept importable for backwards compatibility but no
# longer declared in ``__all__``: new code should reach them through their
# submodules (or not at all — the engine owns arenas and caches now).
from repro.gaussians.backward import (  # noqa: F401
    preprocess_backward,
    preprocess_backward_batch,
    rasterize_backward,
)
from repro.gaussians.fast_raster import (  # noqa: F401
    FlatArena,
    FlatFragments,
    allocate_flat_arena,
    build_flat_fragments,
    ensure_flat_arena,
    rasterize_flat,
    segmented_exclusive_cumprod,
)
from repro.gaussians.projection import (  # noqa: F401
    SharedGaussianData,
    project_gaussians,
    shared_preprocess,
)
from repro.gaussians.sorting import (  # noqa: F401
    build_tile_lists,
    intersection_change_ratio,
)
from repro.gaussians.tiling import assign_tiles  # noqa: F401

# Engine entry points, re-exported lazily (PEP 562) to avoid a circular
# import: repro.engine's backends are wrappers over this package's modules.
_ENGINE_EXPORTS = (
    "ArenaInUseError",
    "BackendCapabilities",
    "BackendRegistry",
    "EngineConfig",
    "RenderBackend",
    "RenderEngine",
    "default_engine",
    "register_backend",
    "set_default_engine",
)


def __getattr__(name: str):
    if name in _ENGINE_EXPORTS:
        import repro.engine as _engine

        return getattr(_engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


# The public surface: scene/render data types, the engine entry points, the
# backend-default helpers and the deprecated free-function shims.  Everything
# else (arena/fragment plumbing, shared preprocessing, per-backend internals)
# is implementation detail reachable via the submodules.
__all__ = [
    "ArenaInUseError",
    "BACKENDS",
    "BYTES_PER_GAUSSIAN",
    "BackendCapabilities",
    "BackendRegistry",
    "BatchGradients",
    "BatchRenderResult",
    "CacheStats",
    "Camera",
    "CloudGradients",
    "DEFAULT_BACKEND",
    "EngineConfig",
    "GaussianCloud",
    "GeomCacheConfig",
    "GeometryCache",
    "GradientTrace",
    "ProjectedGaussians",
    "RenderBackend",
    "RenderEngine",
    "RenderResult",
    "SE3",
    "ScreenSpaceGradients",
    "TileGrid",
    "TileIntersections",
    "TileRenderCache",
    "default_engine",
    "geom_cache_enabled",
    "get_default_backend",
    "quaternion_to_rotation",
    "rasterize",
    "rasterize_batch",
    "register_backend",
    "render_backward",
    "render_backward_batch",
    "rotation_to_quaternion",
    "set_default_backend",
    "set_default_engine",
    "use_backend",
]
