"""3D Gaussian Splatting substrate: scene representation, rendering, backprop.

This package implements every step of the 3DGS pipeline described in Sec. 2.1
of the paper:

* Step 1 Preprocessing: :mod:`projection` (1-1) and :mod:`tiling` (1-2)
* Step 2 Sorting: :mod:`sorting`
* Step 3 Rendering: :mod:`rasterizer`
* Step 4 Rendering BP and Step 5 Preprocessing BP: :mod:`backward`
"""

from repro.gaussians.backward import (
    CloudGradients,
    GradientTrace,
    ScreenSpaceGradients,
    preprocess_backward,
    preprocess_backward_batch,
    rasterize_backward,
    render_backward,
)
from repro.gaussians.batch import (
    BatchGradients,
    BatchRenderResult,
    rasterize_batch,
    render_backward_batch,
)
from repro.gaussians.camera import Camera
from repro.gaussians.fast_raster import (
    FlatArena,
    FlatFragments,
    allocate_flat_arena,
    build_flat_fragments,
    ensure_flat_arena,
    rasterize_flat,
    segmented_exclusive_cumprod,
)
from repro.gaussians.gaussian_model import BYTES_PER_GAUSSIAN, GaussianCloud
from repro.gaussians.geom_cache import (
    CacheStats,
    GeomCacheConfig,
    GeometryCache,
    geom_cache_enabled,
)
from repro.gaussians.projection import (
    ProjectedGaussians,
    SharedGaussianData,
    project_gaussians,
    shared_preprocess,
)
from repro.gaussians.rasterizer import (
    BACKENDS,
    DEFAULT_BACKEND,
    RenderResult,
    TileRenderCache,
    get_default_backend,
    rasterize,
    set_default_backend,
    use_backend,
)
from repro.gaussians.se3 import SE3, quaternion_to_rotation, rotation_to_quaternion
from repro.gaussians.sorting import (
    TileIntersections,
    build_tile_lists,
    intersection_change_ratio,
)
from repro.gaussians.tiling import TileGrid, assign_tiles

__all__ = [
    "BACKENDS",
    "BYTES_PER_GAUSSIAN",
    "BatchGradients",
    "BatchRenderResult",
    "CacheStats",
    "Camera",
    "CloudGradients",
    "DEFAULT_BACKEND",
    "FlatArena",
    "FlatFragments",
    "GaussianCloud",
    "GeomCacheConfig",
    "GeometryCache",
    "GradientTrace",
    "ProjectedGaussians",
    "RenderResult",
    "SE3",
    "ScreenSpaceGradients",
    "SharedGaussianData",
    "TileGrid",
    "TileIntersections",
    "TileRenderCache",
    "allocate_flat_arena",
    "assign_tiles",
    "build_flat_fragments",
    "build_tile_lists",
    "ensure_flat_arena",
    "geom_cache_enabled",
    "get_default_backend",
    "intersection_change_ratio",
    "preprocess_backward",
    "preprocess_backward_batch",
    "project_gaussians",
    "quaternion_to_rotation",
    "rasterize",
    "rasterize_backward",
    "rasterize_batch",
    "rasterize_flat",
    "render_backward",
    "render_backward_batch",
    "rotation_to_quaternion",
    "segmented_exclusive_cumprod",
    "set_default_backend",
    "shared_preprocess",
    "use_backend",
]
