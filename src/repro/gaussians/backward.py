"""Steps 4-5: *Rendering BP* and *Preprocessing BP*.

``rasterize_backward`` propagates per-pixel colour (and optionally depth)
losses to pixel-level 2D Gaussian gradients and aggregates them to
Gaussian-level 2D gradients - the stage the paper identifies as the dominant
bottleneck (Observation 2/4) because of the atomic-add aggregation.  It also
emits a :class:`GradientTrace` describing exactly how many pixel-level
gradient contributions each Gaussian received per tile; this trace is what the
hardware model feeds to its atomic-add and GMU cycle models.

``preprocess_backward`` then maps 2D gradients to 3D Gaussian gradients
(position, covariance -> scale/rotation, opacity, colour) and, during
tracking, to the camera-pose twist gradient via the SE(3) left perturbation.
The gradients with respect to the 3D mean and covariance are exactly the
quantities RTGS's adaptive pruning reuses for its importance score (Eq. 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gaussians.gaussian_model import GaussianCloud
from repro.gaussians.projection import ProjectedGaussians
from repro.gaussians.rasterizer import RenderResult
from repro.gaussians.se3 import hat

_EPS = 1e-12


@dataclass
class GradientTrace:
    """Bookkeeping of the gradient-aggregation workload for the hardware model.

    Attributes
    ----------
    tile_ids:
        Tiles that produced at least one gradient.
    per_tile_source_indices:
        For each such tile, the *source* Gaussian indices (rows of the cloud)
        that received gradients from that tile.
    per_tile_pixel_counts:
        For each such tile, the number of pixels contributing a gradient to the
        matching Gaussian - i.e. the number of pixel-level atomic adds the GPU
        baseline would issue for that (tile, Gaussian) pair.
    fragments_per_pixel:
        Per-pixel backward fragment counts (mirrors the forward workload).
    """

    tile_ids: list[int] = field(default_factory=list)
    per_tile_source_indices: list[np.ndarray] = field(default_factory=list)
    per_tile_pixel_counts: list[np.ndarray] = field(default_factory=list)
    fragments_per_pixel: np.ndarray | None = None

    @property
    def total_pixel_level_updates(self) -> int:
        """Total pixel-level gradient contributions (GPU atomic adds)."""
        return int(sum(int(c.sum()) for c in self.per_tile_pixel_counts))

    @property
    def total_tile_level_updates(self) -> int:
        """Total (tile, Gaussian) pairs with a non-zero merged gradient."""
        return int(sum(len(c) for c in self.per_tile_source_indices))

    def gaussian_level_updates(self, n_gaussians: int) -> np.ndarray:
        """Per-source-Gaussian count of tile-level gradient updates."""
        counts = np.zeros(n_gaussians, dtype=int)
        for indices in self.per_tile_source_indices:
            np.add.at(counts, indices, 1)
        return counts


@dataclass
class ScreenSpaceGradients:
    """Gradients with respect to the *projected* (screen-space) Gaussians."""

    projected: ProjectedGaussians
    colors: np.ndarray  # (M, 3)
    opacities: np.ndarray  # (M,) d L / d opacity (post-sigmoid)
    means2d: np.ndarray  # (M, 2)
    conics: np.ndarray  # (M, 2, 2)
    depths: np.ndarray  # (M,) direct depth-render term
    trace: GradientTrace


@dataclass
class CloudGradients:
    """Gradients with respect to the full Gaussian cloud and the camera pose."""

    positions: np.ndarray  # (N, 3)
    log_scales: np.ndarray  # (N, 3)
    rotations: np.ndarray  # (N, 4)
    opacity_logits: np.ndarray  # (N,)
    colors: np.ndarray  # (N, 3)
    cov3d: np.ndarray  # (N, 3, 3)  dL/dSigma_world, consumed by the importance score
    pose_twist: np.ndarray  # (6,)  dL/d xi for the left-perturbed world-to-camera pose
    per_gaussian_pose: np.ndarray  # (N, 6) per-Gaussian contribution to the pose gradient
    trace: GradientTrace

    def importance_inputs(self) -> tuple[np.ndarray, np.ndarray]:
        """Return (||dL/dmu||, ||dL/dSigma||) per Gaussian for Eq. 7."""
        mu_norm = np.linalg.norm(self.positions, axis=1)
        sigma_norm = np.linalg.norm(self.cov3d.reshape(self.cov3d.shape[0], -1), axis=1)
        return mu_norm, sigma_norm


def rasterize_backward(
    result: RenderResult,
    dL_dimage: np.ndarray,
    dL_ddepth: np.ndarray | None = None,
    backend: str | None = None,
) -> ScreenSpaceGradients:
    """Step 4 Rendering BP: pixel losses -> screen-space Gaussian gradients.

    ``backend=None`` follows the backend that produced ``result``: flat
    renders take the restructured fast path in
    :func:`repro.gaussians.fast_raster.rasterize_backward_flat`, tile renders
    take the reference implementation below.  Passing ``"tile"`` or ``"flat"``
    explicitly overrides this (both consume the same cache layout; the
    differential harness relies on the override to cross-check them).
    """
    if backend is None:
        backend = getattr(result, "backend", "tile")
    if backend not in ("tile", "flat"):
        raise ValueError(
            f"unknown rasterizer backend {backend!r}; expected one of ('tile', 'flat')"
        )
    if backend == "flat":
        from repro.gaussians.fast_raster import rasterize_backward_flat

        return rasterize_backward_flat(result, dL_dimage, dL_ddepth)
    projected = result.projected
    n_visible = projected.n_visible
    grads_colors = np.zeros((n_visible, 3))
    grads_opacity = np.zeros(n_visible)
    grads_means2d = np.zeros((n_visible, 2))
    grads_conics = np.zeros((n_visible, 2, 2))
    grads_depths = np.zeros(n_visible)
    trace = GradientTrace(fragments_per_pixel=result.fragments_per_pixel.copy())

    dL_dimage = np.asarray(dL_dimage, dtype=np.float64)
    if dL_dimage.shape != result.image.shape:
        raise ValueError(
            f"dL_dimage shape {dL_dimage.shape} does not match image {result.image.shape}"
        )
    if dL_ddepth is not None:
        dL_ddepth = np.asarray(dL_ddepth, dtype=np.float64)
        if dL_ddepth.shape != result.depth.shape:
            raise ValueError(
                f"dL_ddepth shape {dL_ddepth.shape} does not match depth {result.depth.shape}"
            )

    for cache in result.tile_caches:
        rows = cache.rows
        v_idx, u_idx = cache.pixel_indices
        pixel_color_grad = dL_dimage[v_idx, u_idx]  # (P, 3)
        if dL_ddepth is not None:
            pixel_depth_grad = dL_ddepth[v_idx, u_idx]  # (P,)
        else:
            pixel_depth_grad = np.zeros(len(v_idx))

        colors = projected.colors[rows]  # (M, 3)
        depths = projected.depths[rows]  # (M,)
        opacities = projected.opacities[rows]  # (M,)
        conics = projected.conics[rows]  # (M, 2, 2)

        weights = cache.weights  # (P, M)
        alphas = cache.alphas
        gauss = cache.gauss_values
        trans_before = cache.transmittance_before
        deltas = cache.deltas

        # Direct colour / depth gradients: dL/dc_k = w_k * dL/dC_P.
        np.add.at(grads_colors, rows, weights.T @ pixel_color_grad)
        np.add.at(grads_depths, rows, weights.T @ pixel_depth_grad)

        # Suffix sums S_k = sum_{n > k} w_n c_n needed for dC/dalpha_k.
        weighted_colors = weights[:, :, None] * colors[None, :, :]
        suffix_color = _reverse_exclusive_cumsum(weighted_colors, axis=1)
        weighted_depths = weights * depths[None, :]
        suffix_depth = _reverse_exclusive_cumsum(weighted_depths, axis=1)

        one_minus_alpha = np.maximum(1.0 - alphas, 1.0 - 0.995)
        dC_dalpha = (
            trans_before[:, :, None] * colors[None, :, :]
            - suffix_color / one_minus_alpha[:, :, None]
        )
        dD_dalpha = trans_before * depths[None, :] - suffix_depth / one_minus_alpha

        dL_dalpha = (dC_dalpha * pixel_color_grad[:, None, :]).sum(axis=2)
        dL_dalpha += dD_dalpha * pixel_depth_grad[:, None]

        valid = cache.processed & (alphas > 0.0) & (~cache.clamp_mask)
        dL_dalpha = np.where(valid, dL_dalpha, 0.0)

        # alpha = opacity * G  ->  opacity and Gaussian-value chains.
        np.add.at(grads_opacity, rows, (gauss * dL_dalpha).sum(axis=0))
        dL_dgauss = opacities[None, :] * dL_dalpha  # (P, M)

        # G = exp(-0.5 d^T A d): dG/dmu = G * (A d), dG/dA = -0.5 * G * d d^T.
        a = conics[:, 0, 0][None, :]
        b = conics[:, 0, 1][None, :]
        c = conics[:, 1, 1][None, :]
        a_dx0 = a * deltas[:, :, 0] + b * deltas[:, :, 1]
        a_dx1 = b * deltas[:, :, 0] + c * deltas[:, :, 1]
        common = dL_dgauss * gauss
        np.add.at(
            grads_means2d,
            rows,
            np.stack([(common * a_dx0).sum(axis=0), (common * a_dx1).sum(axis=0)], axis=1),
        )
        outer = deltas[:, :, :, None] * deltas[:, :, None, :]  # (P, M, 2, 2)
        np.add.at(
            grads_conics,
            rows,
            np.einsum("pm,pmij->mij", -0.5 * common, outer),
        )

        # Trace of pixel-level contributions for the hardware model.
        contributions = (weights > 0.0).sum(axis=0)
        has_grad = contributions > 0
        if np.any(has_grad):
            trace.tile_ids.append(cache.tile_id)
            trace.per_tile_source_indices.append(projected.indices[rows[has_grad]])
            trace.per_tile_pixel_counts.append(contributions[has_grad].astype(int))

    return ScreenSpaceGradients(
        projected=projected,
        colors=grads_colors,
        opacities=grads_opacity,
        means2d=grads_means2d,
        conics=grads_conics,
        depths=grads_depths,
        trace=trace,
    )


def preprocess_backward(
    screen_grads: ScreenSpaceGradients,
    cloud: GaussianCloud,
    compute_pose_gradient: bool = True,
) -> CloudGradients:
    """Step 5 Preprocessing BP: 2D gradients -> 3D Gaussian and pose gradients."""
    projected = screen_grads.projected
    n_total = len(cloud)
    indices = projected.indices
    m_count = projected.n_visible

    out_positions = np.zeros((n_total, 3))
    out_log_scales = np.zeros((n_total, 3))
    out_rotations = np.zeros((n_total, 4))
    out_opacity_logits = np.zeros(n_total)
    out_colors = np.zeros((n_total, 3))
    out_cov3d = np.zeros((n_total, 3, 3))
    per_gaussian_pose = np.zeros((n_total, 6))
    pose_twist = np.zeros(6)

    if m_count == 0:
        return CloudGradients(
            positions=out_positions,
            log_scales=out_log_scales,
            rotations=out_rotations,
            opacity_logits=out_opacity_logits,
            colors=out_colors,
            cov3d=out_cov3d,
            pose_twist=pose_twist,
            per_gaussian_pose=per_gaussian_pose,
            trace=screen_grads.trace,
        )

    camera = projected.camera
    rotation_cw = projected.rotation_cw
    points_cam = projected.points_cam
    jac = projected.jacobians  # (M, 2, 3)
    cov3d = projected.cov3d  # (M, 3, 3)
    conics = projected.conics

    # conic = inv(cov2d): dL/dcov2d = -conic^T dL/dconic conic^T (conic symmetric).
    dL_dcov2d = -np.einsum("mij,mjk,mkl->mil", conics, screen_grads.conics, conics)

    # mean2d chain: dL/dp_cam = J^T dL/dmean2d.
    dL_dpcam = np.einsum("mij,mi->mj", jac, screen_grads.means2d)

    # cov2d = M Sigma M^T with M = J R_cw.
    m_lin = jac @ rotation_cw  # (M, 2, 3)
    dL_dsigma = np.einsum("mia,mij,mjb->mab", m_lin, dL_dcov2d, m_lin)
    dL_dmlin = 2.0 * np.einsum("mij,mjk,mkl->mil", dL_dcov2d, m_lin, cov3d)
    dL_djac = dL_dmlin @ rotation_cw.T
    dL_drot_cw = np.einsum("mki,mkj->mij", jac, dL_dmlin)  # (M, 3, 3) per-Gaussian dL/dW

    # J depends on p_cam; add those terms to dL/dp_cam.
    x, y, z = points_cam[:, 0], points_cam[:, 1], points_cam[:, 2]
    inv_z2 = 1.0 / (z * z)
    inv_z3 = inv_z2 / z
    dL_dpcam[:, 0] += dL_djac[:, 0, 2] * (-camera.fx * inv_z2)
    dL_dpcam[:, 1] += dL_djac[:, 1, 2] * (-camera.fy * inv_z2)
    dL_dpcam[:, 2] += (
        dL_djac[:, 0, 0] * (-camera.fx * inv_z2)
        + dL_djac[:, 0, 2] * (2.0 * camera.fx * x * inv_z3)
        + dL_djac[:, 1, 1] * (-camera.fy * inv_z2)
        + dL_djac[:, 1, 2] * (2.0 * camera.fy * y * inv_z3)
    )
    # Direct depth-render term (rendered depth is the camera-frame z).
    dL_dpcam[:, 2] += screen_grads.depths

    # p_cam = R_cw p_world + t: position gradient in world frame.
    dL_dpos = dL_dpcam @ rotation_cw

    # Sigma_world = A A^T with A = R_q S: scale and rotation gradients.
    rot_g = cloud.rotation_matrices()[indices]
    scales = cloud.scales()[indices]
    a_mat = rot_g * scales[:, None, :]
    dL_da = 2.0 * np.einsum("mij,mjk->mik", dL_dsigma, a_mat)
    dL_dscales = np.einsum("mij,mij->mj", dL_da, rot_g)
    dL_dlog_scales = dL_dscales * scales
    dL_drot_g = dL_da * scales[:, None, :]
    dL_dquat = _rotation_gradient_to_quaternion(dL_drot_g, cloud.rotations[indices])

    # Opacity logit chain through the sigmoid.
    opac = projected.opacities
    dL_dlogit = screen_grads.opacities * opac * (1.0 - opac)

    # Scatter into full-cloud arrays.
    np.add.at(out_positions, indices, dL_dpos)
    np.add.at(out_log_scales, indices, dL_dlog_scales)
    np.add.at(out_rotations, indices, dL_dquat)
    np.add.at(out_opacity_logits, indices, dL_dlogit)
    np.add.at(out_colors, indices, screen_grads.colors)
    np.add.at(out_cov3d, indices, dL_dsigma)

    if compute_pose_gradient:
        # Left perturbation T' = exp(xi) T: dp_cam/drho = I, dp_cam/dphi = -[p_cam]_x.
        per_rho = dL_dpcam
        per_phi = np.cross(points_cam, dL_dpcam)
        # Rotation part of the covariance chain: R' = exp(phi^) R => dR = phi^ R.
        generators = [hat(e) for e in np.eye(3)]
        rot_terms = np.stack(
            [
                np.einsum("mij,ij->m", dL_drot_cw, gen @ rotation_cw)
                for gen in generators
            ],
            axis=1,
        )
        per_phi = per_phi + rot_terms
        per_pose = np.concatenate([per_rho, per_phi], axis=1)
        np.add.at(per_gaussian_pose, indices, per_pose)
        pose_twist = per_pose.sum(axis=0)

    return CloudGradients(
        positions=out_positions,
        log_scales=out_log_scales,
        rotations=out_rotations,
        opacity_logits=out_opacity_logits,
        colors=out_colors,
        cov3d=out_cov3d,
        pose_twist=pose_twist,
        per_gaussian_pose=per_gaussian_pose,
        trace=screen_grads.trace,
    )


def render_backward(
    result: RenderResult,
    cloud: GaussianCloud,
    dL_dimage: np.ndarray,
    dL_ddepth: np.ndarray | None = None,
    compute_pose_gradient: bool = True,
    backend: str | None = None,
) -> CloudGradients:
    """Convenience wrapper running Steps 4 and 5 back to back."""
    screen = rasterize_backward(result, dL_dimage, dL_ddepth, backend=backend)
    return preprocess_backward(screen, cloud, compute_pose_gradient=compute_pose_gradient)


# -- helpers ----------------------------------------------------------------
def _reverse_exclusive_cumsum(values: np.ndarray, axis: int) -> np.ndarray:
    """Return ``S[k] = sum_{n > k} values[n]`` along ``axis``."""
    flipped = np.flip(values, axis=axis)
    csum = np.cumsum(flipped, axis=axis)
    inclusive = np.flip(csum, axis=axis)
    return inclusive - values


def _rotation_gradient_to_quaternion(
    dL_drot: np.ndarray, quaternions: np.ndarray
) -> np.ndarray:
    """Chain dL/dR through R(q_hat) and the quaternion normalisation."""
    quats = np.atleast_2d(quaternions)
    norms = np.linalg.norm(quats, axis=1, keepdims=True)
    norms = np.where(norms < _EPS, 1.0, norms)
    unit = quats / norms
    w, x, y, z = unit[:, 0], unit[:, 1], unit[:, 2], unit[:, 3]
    zeros = np.zeros_like(w)

    def _stack(rows):
        return np.stack([np.stack(r, axis=-1) for r in rows], axis=-2)

    dR_dw = 2.0 * _stack([[zeros, -z, y], [z, zeros, -x], [-y, x, zeros]])
    dR_dx = 2.0 * _stack([[zeros, y, z], [y, -2 * x, -w], [z, w, -2 * x]])
    dR_dy = 2.0 * _stack([[-2 * y, x, w], [x, zeros, z], [-w, z, -2 * y]])
    dR_dz = 2.0 * _stack([[-2 * z, -w, x], [w, -2 * z, y], [x, y, zeros]])

    dL_dunit = np.stack(
        [
            np.einsum("mij,mij->m", dL_drot, dR_dw),
            np.einsum("mij,mij->m", dL_drot, dR_dx),
            np.einsum("mij,mij->m", dL_drot, dR_dy),
            np.einsum("mij,mij->m", dL_drot, dR_dz),
        ],
        axis=1,
    )
    # q_hat = q / ||q||: dq_hat/dq = (I - q_hat q_hat^T) / ||q||.
    projection = np.eye(4)[None, :, :] - unit[:, :, None] * unit[:, None, :]
    return np.einsum("mij,mi->mj", projection, dL_dunit) / norms
