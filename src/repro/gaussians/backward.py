"""Steps 4-5: *Rendering BP* and *Preprocessing BP*.

``rasterize_backward`` propagates per-pixel colour (and optionally depth)
losses to pixel-level 2D Gaussian gradients and aggregates them to
Gaussian-level 2D gradients - the stage the paper identifies as the dominant
bottleneck (Observation 2/4) because of the atomic-add aggregation.  It also
emits a :class:`GradientTrace` describing exactly how many pixel-level
gradient contributions each Gaussian received per tile; this trace is what the
hardware model feeds to its atomic-add and GMU cycle models.

``preprocess_backward`` then maps 2D gradients to 3D Gaussian gradients
(position, covariance -> scale/rotation, opacity, colour) and, during
tracking, to the camera-pose twist gradient via the SE(3) left perturbation.
The gradients with respect to the 3D mean and covariance are exactly the
quantities RTGS's adaptive pruning reuses for its importance score (Eq. 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gaussians.gaussian_model import GaussianCloud
from repro.gaussians.projection import ProjectedGaussians
from repro.gaussians.rasterizer import RenderResult
from repro.gaussians.se3 import hat

_EPS = 1e-12


@dataclass
class GradientTrace:
    """Bookkeeping of the gradient-aggregation workload for the hardware model.

    Attributes
    ----------
    tile_ids:
        Tiles that produced at least one gradient.
    per_tile_source_indices:
        For each such tile, the *source* Gaussian indices (rows of the cloud)
        that received gradients from that tile.
    per_tile_pixel_counts:
        For each such tile, the number of pixels contributing a gradient to the
        matching Gaussian - i.e. the number of pixel-level atomic adds the GPU
        baseline would issue for that (tile, Gaussian) pair.
    fragments_per_pixel:
        Per-pixel backward fragment counts (mirrors the forward workload).
    """

    tile_ids: list[int] = field(default_factory=list)
    per_tile_source_indices: list[np.ndarray] = field(default_factory=list)
    per_tile_pixel_counts: list[np.ndarray] = field(default_factory=list)
    fragments_per_pixel: np.ndarray | None = None

    @property
    def total_pixel_level_updates(self) -> int:
        """Total pixel-level gradient contributions (GPU atomic adds)."""
        return int(sum(int(c.sum()) for c in self.per_tile_pixel_counts))

    @property
    def total_tile_level_updates(self) -> int:
        """Total (tile, Gaussian) pairs with a non-zero merged gradient."""
        return int(sum(len(c) for c in self.per_tile_source_indices))

    def gaussian_level_updates(self, n_gaussians: int) -> np.ndarray:
        """Per-source-Gaussian count of tile-level gradient updates."""
        counts = np.zeros(n_gaussians, dtype=int)
        for indices in self.per_tile_source_indices:
            np.add.at(counts, indices, 1)
        return counts


@dataclass
class ScreenSpaceGradients:
    """Gradients with respect to the *projected* (screen-space) Gaussians."""

    projected: ProjectedGaussians
    colors: np.ndarray  # (M, 3)
    opacities: np.ndarray  # (M,) d L / d opacity (post-sigmoid)
    means2d: np.ndarray  # (M, 2)
    conics: np.ndarray  # (M, 2, 2)
    depths: np.ndarray  # (M,) direct depth-render term
    trace: GradientTrace


@dataclass
class CloudGradients:
    """Gradients with respect to the full Gaussian cloud and the camera pose."""

    positions: np.ndarray  # (N, 3)
    log_scales: np.ndarray  # (N, 3)
    rotations: np.ndarray  # (N, 4)
    opacity_logits: np.ndarray  # (N,)
    colors: np.ndarray  # (N, 3)
    cov3d: np.ndarray  # (N, 3, 3)  dL/dSigma_world, consumed by the importance score
    pose_twist: np.ndarray  # (6,)  dL/d xi for the left-perturbed world-to-camera pose
    per_gaussian_pose: np.ndarray  # (N, 6) per-Gaussian contribution to the pose gradient
    trace: GradientTrace

    def importance_inputs(self) -> tuple[np.ndarray, np.ndarray]:
        """Return (||dL/dmu||, ||dL/dSigma||) per Gaussian for Eq. 7."""
        mu_norm = np.linalg.norm(self.positions, axis=1)
        sigma_norm = np.linalg.norm(self.cov3d.reshape(self.cov3d.shape[0], -1), axis=1)
        return mu_norm, sigma_norm


def rasterize_backward(
    result: RenderResult,
    dL_dimage: np.ndarray,
    dL_ddepth: np.ndarray | None = None,
    backend: str | None = None,
) -> ScreenSpaceGradients:
    """Step 4 Rendering BP: pixel losses -> screen-space Gaussian gradients.

    ``backend=None`` follows the backend that produced ``result``: flat
    renders take the restructured fast path in
    :func:`repro.gaussians.fast_raster.rasterize_backward_flat`, tile renders
    take the reference implementation below.  Passing ``"tile"`` or ``"flat"``
    explicitly overrides this (both consume the same cache layout; the
    differential harness relies on the override to cross-check them).
    """
    if backend is None:
        backend = getattr(result, "backend", "tile")
    if backend not in ("tile", "flat"):
        raise ValueError(
            f"unknown rasterizer backend {backend!r}; expected one of ('tile', 'flat')"
        )
    if backend == "flat":
        from repro.gaussians.fast_raster import rasterize_backward_flat

        return rasterize_backward_flat(result, dL_dimage, dL_ddepth)
    projected = result.projected
    n_visible = projected.n_visible
    grads_colors = np.zeros((n_visible, 3))
    grads_opacity = np.zeros(n_visible)
    grads_means2d = np.zeros((n_visible, 2))
    grads_conics = np.zeros((n_visible, 2, 2))
    grads_depths = np.zeros(n_visible)
    trace = GradientTrace(fragments_per_pixel=result.fragments_per_pixel.copy())

    dL_dimage = np.asarray(dL_dimage, dtype=np.float64)
    if dL_dimage.shape != result.image.shape:
        raise ValueError(
            f"dL_dimage shape {dL_dimage.shape} does not match image {result.image.shape}"
        )
    if dL_ddepth is not None:
        dL_ddepth = np.asarray(dL_ddepth, dtype=np.float64)
        if dL_ddepth.shape != result.depth.shape:
            raise ValueError(
                f"dL_ddepth shape {dL_ddepth.shape} does not match depth {result.depth.shape}"
            )

    for cache in result.tile_caches:
        rows = cache.rows
        v_idx, u_idx = cache.pixel_indices
        pixel_color_grad = dL_dimage[v_idx, u_idx]  # (P, 3)
        if dL_ddepth is not None:
            pixel_depth_grad = dL_ddepth[v_idx, u_idx]  # (P,)
        else:
            pixel_depth_grad = np.zeros(len(v_idx))

        colors = projected.colors[rows]  # (M, 3)
        depths = projected.depths[rows]  # (M,)
        opacities = projected.opacities[rows]  # (M,)
        conics = projected.conics[rows]  # (M, 2, 2)

        weights = cache.weights  # (P, M)
        alphas = cache.alphas
        gauss = cache.gauss_values
        trans_before = cache.transmittance_before
        deltas = cache.deltas

        # Direct colour / depth gradients: dL/dc_k = w_k * dL/dC_P.
        np.add.at(grads_colors, rows, weights.T @ pixel_color_grad)
        np.add.at(grads_depths, rows, weights.T @ pixel_depth_grad)

        # Suffix sums S_k = sum_{n > k} w_n c_n needed for dC/dalpha_k.
        weighted_colors = weights[:, :, None] * colors[None, :, :]
        suffix_color = _reverse_exclusive_cumsum(weighted_colors, axis=1)
        weighted_depths = weights * depths[None, :]
        suffix_depth = _reverse_exclusive_cumsum(weighted_depths, axis=1)

        one_minus_alpha = np.maximum(1.0 - alphas, 1.0 - 0.995)
        dC_dalpha = (
            trans_before[:, :, None] * colors[None, :, :]
            - suffix_color / one_minus_alpha[:, :, None]
        )
        dD_dalpha = trans_before * depths[None, :] - suffix_depth / one_minus_alpha

        dL_dalpha = (dC_dalpha * pixel_color_grad[:, None, :]).sum(axis=2)
        dL_dalpha += dD_dalpha * pixel_depth_grad[:, None]

        valid = cache.processed & (alphas > 0.0) & (~cache.clamp_mask)
        dL_dalpha = np.where(valid, dL_dalpha, 0.0)

        # alpha = opacity * G  ->  opacity and Gaussian-value chains.
        np.add.at(grads_opacity, rows, (gauss * dL_dalpha).sum(axis=0))
        dL_dgauss = opacities[None, :] * dL_dalpha  # (P, M)

        # G = exp(-0.5 d^T A d): dG/dmu = G * (A d), dG/dA = -0.5 * G * d d^T.
        a = conics[:, 0, 0][None, :]
        b = conics[:, 0, 1][None, :]
        c = conics[:, 1, 1][None, :]
        a_dx0 = a * deltas[:, :, 0] + b * deltas[:, :, 1]
        a_dx1 = b * deltas[:, :, 0] + c * deltas[:, :, 1]
        common = dL_dgauss * gauss
        np.add.at(
            grads_means2d,
            rows,
            np.stack([(common * a_dx0).sum(axis=0), (common * a_dx1).sum(axis=0)], axis=1),
        )
        outer = deltas[:, :, :, None] * deltas[:, :, None, :]  # (P, M, 2, 2)
        np.add.at(
            grads_conics,
            rows,
            np.einsum("pm,pmij->mij", -0.5 * common, outer),
        )

        # Trace of pixel-level contributions for the hardware model.
        contributions = (weights > 0.0).sum(axis=0)
        has_grad = contributions > 0
        if np.any(has_grad):
            trace.tile_ids.append(cache.tile_id)
            trace.per_tile_source_indices.append(projected.indices[rows[has_grad]])
            trace.per_tile_pixel_counts.append(contributions[has_grad].astype(int))

    return ScreenSpaceGradients(
        projected=projected,
        colors=grads_colors,
        opacities=grads_opacity,
        means2d=grads_means2d,
        conics=grads_conics,
        depths=grads_depths,
        trace=trace,
    )


def preprocess_backward(
    screen_grads: ScreenSpaceGradients,
    cloud: GaussianCloud,
    compute_pose_gradient: bool = True,
) -> CloudGradients:
    """Step 5 Preprocessing BP: 2D gradients -> 3D Gaussian and pose gradients.

    Thin wrapper over the fused multi-view implementation
    (:func:`preprocess_backward_batch` with a batch of one): there is exactly
    one copy of the Step 5 gradient chain, and the single-view path keeps its
    original trace object (the batch path builds a merged trace).
    """
    cloud_grads, _ = preprocess_backward_batch(
        [screen_grads], cloud, compute_pose_gradient=compute_pose_gradient
    )
    cloud_grads.trace = screen_grads.trace
    return cloud_grads


def preprocess_backward_batch(
    screen_grads_list: list[ScreenSpaceGradients],
    cloud: GaussianCloud,
    compute_pose_gradient: bool = False,
) -> tuple[CloudGradients, np.ndarray]:
    """Fused Step 5 over a batch of views: one pass, summed cloud gradients.

    Concatenates every view's screen-space gradients into one row set (with
    per-row camera rotations and intrinsics, since views differ in pose and
    possibly camera) and runs the Step 5 chain *once* over the whole batch.
    Row-wise arithmetic is identical to :func:`preprocess_backward`, and the
    scatter accumulates contributions in the same view-major order a
    sequential loop would, so the fused result matches the per-view sum to
    floating-point regrouping error (pinned at 1e-8 by the differential
    harness).

    Returns the summed :class:`CloudGradients` (its ``pose_twist`` is the sum
    over views) plus a ``(V, 6)`` array of per-view pose twists.
    """
    n_total = len(cloud)
    n_views = len(screen_grads_list)
    out_positions = np.zeros((n_total, 3))
    out_log_scales = np.zeros((n_total, 3))
    out_rotations = np.zeros((n_total, 4))
    out_opacity_logits = np.zeros(n_total)
    out_colors = np.zeros((n_total, 3))
    out_cov3d = np.zeros((n_total, 3, 3))
    per_gaussian_pose = np.zeros((n_total, 6))
    per_view_twists = np.zeros((n_views, 6))

    merged_trace = GradientTrace()
    for screen in screen_grads_list:
        merged_trace.tile_ids.extend(screen.trace.tile_ids)
        merged_trace.per_tile_source_indices.extend(screen.trace.per_tile_source_indices)
        merged_trace.per_tile_pixel_counts.extend(screen.trace.per_tile_pixel_counts)

    populated = [
        (view, screen)
        for view, screen in enumerate(screen_grads_list)
        if screen.projected.n_visible > 0
    ]
    if not populated:
        return (
            CloudGradients(
                positions=out_positions,
                log_scales=out_log_scales,
                rotations=out_rotations,
                opacity_logits=out_opacity_logits,
                colors=out_colors,
                cov3d=out_cov3d,
                pose_twist=np.zeros(6),
                per_gaussian_pose=per_gaussian_pose,
                trace=merged_trace,
            ),
            per_view_twists,
        )

    def _concat(getter):
        # Batch-of-one (every single-view preprocess_backward call) stays
        # zero-copy: the per-view array is used as-is.
        arrays = [getter(screen) for _, screen in populated]
        return arrays[0] if len(arrays) == 1 else np.concatenate(arrays, axis=0)

    indices = _concat(lambda s: s.projected.indices)
    view_ids = np.concatenate(
        [np.full(screen.projected.n_visible, view, dtype=int) for view, screen in populated]
    )
    points_cam = _concat(lambda s: s.projected.points_cam)
    jac = _concat(lambda s: s.projected.jacobians)
    cov3d = _concat(lambda s: s.projected.cov3d)
    conics = _concat(lambda s: s.projected.conics)
    opac = _concat(lambda s: s.projected.opacities)
    g_colors = _concat(lambda s: s.colors)
    g_opacities = _concat(lambda s: s.opacities)
    g_means2d = _concat(lambda s: s.means2d)
    g_conics = _concat(lambda s: s.conics)
    g_depths = _concat(lambda s: s.depths)
    # Per-row view-dependent constants: camera rotation and intrinsics.  For
    # one view the broadcast stays a zero-copy view; only a true multi-view
    # batch materialises the concatenation.
    rot_parts = [
        np.broadcast_to(screen.projected.rotation_cw, (screen.projected.n_visible, 3, 3))
        for _, screen in populated
    ]
    rot_rows = rot_parts[0] if len(rot_parts) == 1 else np.concatenate(rot_parts, axis=0)
    fx_parts = [
        np.full(screen.projected.n_visible, screen.projected.camera.fx)
        for _, screen in populated
    ]
    fy_parts = [
        np.full(screen.projected.n_visible, screen.projected.camera.fy)
        for _, screen in populated
    ]
    fx_rows = fx_parts[0] if len(fx_parts) == 1 else np.concatenate(fx_parts)
    fy_rows = fy_parts[0] if len(fy_parts) == 1 else np.concatenate(fy_parts)

    # conic = inv(cov2d): dL/dcov2d = -conic^T dL/dconic conic^T (conic symmetric).
    dL_dcov2d = -np.einsum("mij,mjk,mkl->mil", conics, g_conics, conics)

    # mean2d chain: dL/dp_cam = J^T dL/dmean2d.
    dL_dpcam = np.einsum("mij,mi->mj", jac, g_means2d)

    # cov2d = M Sigma M^T with M = J R_cw (R_cw now varies per row).
    m_lin = np.einsum("mij,mjk->mik", jac, rot_rows)
    dL_dsigma = np.einsum("mia,mij,mjb->mab", m_lin, dL_dcov2d, m_lin)
    dL_dmlin = 2.0 * np.einsum("mij,mjk,mkl->mil", dL_dcov2d, m_lin, cov3d)
    dL_djac = np.einsum("mij,mkj->mik", dL_dmlin, rot_rows)
    dL_drot_cw = np.einsum("mki,mkj->mij", jac, dL_dmlin)

    # J depends on p_cam; add those terms to dL/dp_cam.
    x, y, z = points_cam[:, 0], points_cam[:, 1], points_cam[:, 2]
    inv_z2 = 1.0 / (z * z)
    inv_z3 = inv_z2 / z
    dL_dpcam[:, 0] += dL_djac[:, 0, 2] * (-fx_rows * inv_z2)
    dL_dpcam[:, 1] += dL_djac[:, 1, 2] * (-fy_rows * inv_z2)
    dL_dpcam[:, 2] += (
        dL_djac[:, 0, 0] * (-fx_rows * inv_z2)
        + dL_djac[:, 0, 2] * (2.0 * fx_rows * x * inv_z3)
        + dL_djac[:, 1, 1] * (-fy_rows * inv_z2)
        + dL_djac[:, 1, 2] * (2.0 * fy_rows * y * inv_z3)
    )
    # Direct depth-render term (rendered depth is the camera-frame z).
    dL_dpcam[:, 2] += g_depths

    # p_cam = R_cw p_world + t: position gradient in world frame.
    dL_dpos = np.einsum("mi,mij->mj", dL_dpcam, rot_rows)

    # Sigma_world = A A^T with A = R_q S: scale and rotation gradients.
    rot_g = cloud.rotation_matrices(rows=indices)
    scales = cloud.scales(rows=indices)
    a_mat = rot_g * scales[:, None, :]
    dL_da = 2.0 * np.einsum("mij,mjk->mik", dL_dsigma, a_mat)
    dL_dscales = np.einsum("mij,mij->mj", dL_da, rot_g)
    dL_dlog_scales = dL_dscales * scales
    dL_drot_g = dL_da * scales[:, None, :]
    dL_dquat = _rotation_gradient_to_quaternion(dL_drot_g, cloud.rotations[indices])

    # Opacity logit chain through the sigmoid.
    dL_dlogit = g_opacities * opac * (1.0 - opac)

    # One fused scatter per field over the concatenated (view, Gaussian) rows.
    np.add.at(out_positions, indices, dL_dpos)
    np.add.at(out_log_scales, indices, dL_dlog_scales)
    np.add.at(out_rotations, indices, dL_dquat)
    np.add.at(out_opacity_logits, indices, dL_dlogit)
    np.add.at(out_colors, indices, g_colors)
    np.add.at(out_cov3d, indices, dL_dsigma)

    pose_twist = np.zeros(6)
    if compute_pose_gradient:
        per_rho = dL_dpcam
        per_phi = np.cross(points_cam, dL_dpcam)
        generators = [hat(e) for e in np.eye(3)]
        rot_terms = np.stack(
            [
                np.einsum(
                    "mij,mij->m",
                    dL_drot_cw,
                    np.einsum("ij,mjk->mik", gen, rot_rows),
                )
                for gen in generators
            ],
            axis=1,
        )
        per_pose = np.concatenate([per_rho, per_phi + rot_terms], axis=1)
        np.add.at(per_gaussian_pose, indices, per_pose)
        for component in range(6):
            per_view_twists[:, component] = np.bincount(
                view_ids, weights=per_pose[:, component], minlength=n_views
            )
        pose_twist = per_view_twists.sum(axis=0)

    return (
        CloudGradients(
            positions=out_positions,
            log_scales=out_log_scales,
            rotations=out_rotations,
            opacity_logits=out_opacity_logits,
            colors=out_colors,
            cov3d=out_cov3d,
            pose_twist=pose_twist,
            per_gaussian_pose=per_gaussian_pose,
            trace=merged_trace,
        ),
        per_view_twists,
    )


def render_backward(
    result: RenderResult,
    cloud: GaussianCloud,
    dL_dimage: np.ndarray,
    dL_ddepth: np.ndarray | None = None,
    compute_pose_gradient: bool = True,
    backend: str | None = None,
) -> CloudGradients:
    """Deprecated shim: Steps 4-5 through the process-default engine.

    ``backend=None`` follows the backend that produced ``result``, exactly as
    before.  New code should call :meth:`repro.engine.RenderEngine.backward`
    on an injected engine.
    """
    from repro.engine import default_engine
    from repro.utils.deprecation import warn_render_shim

    warn_render_shim("render_backward", "RenderEngine.backward")
    return default_engine().backward(
        result,
        cloud,
        dL_dimage,
        dL_ddepth,
        compute_pose_gradient=compute_pose_gradient,
        backend=backend,
    )


# -- helpers ----------------------------------------------------------------
def _reverse_exclusive_cumsum(values: np.ndarray, axis: int) -> np.ndarray:
    """Return ``S[k] = sum_{n > k} values[n]`` along ``axis``."""
    flipped = np.flip(values, axis=axis)
    csum = np.cumsum(flipped, axis=axis)
    inclusive = np.flip(csum, axis=axis)
    return inclusive - values


def _rotation_gradient_to_quaternion(
    dL_drot: np.ndarray, quaternions: np.ndarray
) -> np.ndarray:
    """Chain dL/dR through R(q_hat) and the quaternion normalisation."""
    quats = np.atleast_2d(quaternions)
    norms = np.linalg.norm(quats, axis=1, keepdims=True)
    norms = np.where(norms < _EPS, 1.0, norms)
    unit = quats / norms
    w, x, y, z = unit[:, 0], unit[:, 1], unit[:, 2], unit[:, 3]
    zeros = np.zeros_like(w)

    def _stack(rows):
        return np.stack([np.stack(r, axis=-1) for r in rows], axis=-2)

    dR_dw = 2.0 * _stack([[zeros, -z, y], [z, zeros, -x], [-y, x, zeros]])
    dR_dx = 2.0 * _stack([[zeros, y, z], [y, -2 * x, -w], [z, w, -2 * x]])
    dR_dy = 2.0 * _stack([[-2 * y, x, w], [x, zeros, z], [-w, z, -2 * y]])
    dR_dz = 2.0 * _stack([[-2 * z, -w, x], [w, -2 * z, y], [x, y, zeros]])

    dL_dunit = np.stack(
        [
            np.einsum("mij,mij->m", dL_drot, dR_dw),
            np.einsum("mij,mij->m", dL_drot, dR_dx),
            np.einsum("mij,mij->m", dL_drot, dR_dy),
            np.einsum("mij,mij->m", dL_drot, dR_dz),
        ],
        axis=1,
    )
    # q_hat = q / ||q||: dq_hat/dq = (I - q_hat q_hat^T) / ||q||.
    projection = np.eye(4)[None, :, :] - unit[:, :, None] * unit[:, None, :]
    return np.einsum("mij,mi->mj", projection, dL_dunit) / norms
