"""Step 2 *Sorting*: per-tile depth ordering of the projected Gaussians.

The forward pass sorts fragments front-to-back so alpha blending composites in
the correct occlusion order; the backward pass walks the same lists back-to-
front.  RTGS exploits the fact that these tile/Gaussian intersection lists stay
nearly constant across the iterations of one frame (Observation 6), so this
module also exposes the *intersection signature* used to measure the change
ratio that drives the adaptive pruning interval (Sec. 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gaussians.projection import ProjectedGaussians
from repro.gaussians.tiling import TileGrid, assign_tiles


@dataclass
class TileIntersections:
    """Per-tile, depth-sorted lists of projected-Gaussian rows."""

    grid: TileGrid
    per_tile: list[np.ndarray]
    projected: ProjectedGaussians

    @property
    def n_pairs(self) -> int:
        """Total number of (tile, Gaussian) intersection pairs."""
        return int(sum(len(rows) for rows in self.per_tile))

    def tile_gaussian_counts(self) -> np.ndarray:
        """Return the number of Gaussians intersecting each tile."""
        return np.array([len(rows) for rows in self.per_tile], dtype=int)

    def intersection_signature(self) -> set[int]:
        """Return a hashable set of (tile, source-Gaussian) pair codes.

        The adaptive pruner compares signatures from consecutive pruning
        windows to compute the tile-Gaussian intersection change ratio.
        """
        codes: set[int] = set()
        source_indices = self.projected.indices
        n_tiles = self.grid.n_tiles
        for tile_id, rows in enumerate(self.per_tile):
            for row in rows:
                codes.add(int(source_indices[row]) * n_tiles + tile_id)
        return codes


def sort_by_depth(rows: np.ndarray, depths: np.ndarray) -> np.ndarray:
    """Return ``rows`` reordered front-to-back by ``depths[rows]`` (stable)."""
    if rows.size == 0:
        return rows
    order = np.argsort(depths[rows], kind="stable")
    return rows[order]


def build_tile_lists(projected: ProjectedGaussians, grid: TileGrid) -> TileIntersections:
    """Run tile intersection and per-tile depth sorting (Steps 1-2 and 2)."""
    assignments = assign_tiles(projected, grid)
    sorted_lists = [sort_by_depth(rows, projected.depths) for rows in assignments]
    return TileIntersections(grid=grid, per_tile=sorted_lists, projected=projected)


def intersection_change_ratio(before: set[int], after: set[int]) -> float:
    """Fraction of (tile, Gaussian) pairs that changed between two signatures.

    Defined as the size of the symmetric difference divided by the size of the
    union (0.0 when identical, 1.0 when disjoint).  Used to adapt the pruning
    interval ``K``: > 5% change halves the interval, otherwise it doubles.
    """
    if not before and not after:
        return 0.0
    union = before | after
    if not union:
        return 0.0
    return len(before ^ after) / len(union)
