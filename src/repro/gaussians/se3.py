"""SE(3) rigid transforms and so(3)/se(3) Lie-algebra helpers.

Camera poses in the SLAM pipeline are represented as world-to-camera SE(3)
transforms.  Tracking optimises a left-multiplied twist increment
``T <- exp(xi) @ T`` exactly as MonoGS does, so the backward pass in
``repro.gaussians.backward`` produces gradients with respect to that twist.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_array, check_shape

_EPS = 1e-12


def hat(omega: np.ndarray) -> np.ndarray:
    """Return the 3x3 skew-symmetric matrix of a 3-vector."""
    omega = np.asarray(omega, dtype=np.float64)
    wx, wy, wz = omega
    return np.array(
        [
            [0.0, -wz, wy],
            [wz, 0.0, -wx],
            [-wy, wx, 0.0],
        ]
    )


def vee(matrix: np.ndarray) -> np.ndarray:
    """Inverse of :func:`hat`: extract the 3-vector from a skew matrix."""
    matrix = np.asarray(matrix, dtype=np.float64)
    return np.array([matrix[2, 1], matrix[0, 2], matrix[1, 0]])


def so3_exp(omega: np.ndarray) -> np.ndarray:
    """Exponential map from so(3) to SO(3) (Rodrigues formula)."""
    omega = np.asarray(omega, dtype=np.float64)
    theta = float(np.linalg.norm(omega))
    skew = hat(omega)
    if theta < 1e-8:
        return np.eye(3) + skew + 0.5 * skew @ skew
    return (
        np.eye(3)
        + (np.sin(theta) / theta) * skew
        + ((1.0 - np.cos(theta)) / theta**2) * (skew @ skew)
    )


def so3_log(rotation: np.ndarray) -> np.ndarray:
    """Logarithm map from SO(3) to so(3)."""
    rotation = np.asarray(rotation, dtype=np.float64)
    cos_theta = np.clip((np.trace(rotation) - 1.0) / 2.0, -1.0, 1.0)
    theta = float(np.arccos(cos_theta))
    if theta < 1e-8:
        return vee(rotation - rotation.T) / 2.0
    if abs(np.pi - theta) < 1e-6:
        # Near pi the standard formula is ill-conditioned; recover the axis
        # from the symmetric part.
        sym = (rotation + np.eye(3)) / 2.0
        axis = np.sqrt(np.clip(np.diag(sym), 0.0, None))
        # Fix signs using off-diagonal entries.
        if axis[0] > _EPS:
            axis[1] = np.copysign(axis[1], sym[0, 1])
            axis[2] = np.copysign(axis[2], sym[0, 2])
        elif axis[1] > _EPS:
            axis[2] = np.copysign(axis[2], sym[1, 2])
        axis = axis / max(np.linalg.norm(axis), _EPS)
        return theta * axis
    return theta / (2.0 * np.sin(theta)) * vee(rotation - rotation.T)


def _left_jacobian(omega: np.ndarray) -> np.ndarray:
    """Left Jacobian of SO(3), used for the SE(3) exponential."""
    theta = float(np.linalg.norm(omega))
    skew = hat(omega)
    if theta < 1e-8:
        return np.eye(3) + 0.5 * skew + skew @ skew / 6.0
    return (
        np.eye(3)
        + ((1.0 - np.cos(theta)) / theta**2) * skew
        + ((theta - np.sin(theta)) / theta**3) * (skew @ skew)
    )


@dataclass(frozen=True)
class SE3:
    """A rigid transform ``x -> R @ x + t``.

    Instances are immutable; all operations return new :class:`SE3` objects.
    """

    rotation: np.ndarray
    translation: np.ndarray

    def __post_init__(self) -> None:
        rotation = check_shape(check_array(self.rotation, "rotation"), (3, 3), "rotation")
        translation = check_shape(
            check_array(self.translation, "translation"), (3,), "translation"
        )
        object.__setattr__(self, "rotation", rotation)
        object.__setattr__(self, "translation", translation)

    # -- constructors ------------------------------------------------------
    @staticmethod
    def identity() -> "SE3":
        """Return the identity transform."""
        return SE3(np.eye(3), np.zeros(3))

    @staticmethod
    def from_matrix(matrix: np.ndarray) -> "SE3":
        """Build from a 4x4 homogeneous matrix."""
        matrix = check_shape(check_array(matrix, "matrix"), (4, 4), "matrix")
        return SE3(matrix[:3, :3], matrix[:3, 3])

    @staticmethod
    def exp(twist: np.ndarray) -> "SE3":
        """Exponential map from a 6-vector twist ``(rho, omega)`` to SE(3)."""
        twist = check_shape(check_array(twist, "twist"), (6,), "twist")
        rho, omega = twist[:3], twist[3:]
        rotation = so3_exp(omega)
        translation = _left_jacobian(omega) @ rho
        return SE3(rotation, translation)

    @staticmethod
    def look_at(eye: np.ndarray, target: np.ndarray, up=(0.0, 0.0, 1.0)) -> "SE3":
        """Return the world-to-camera transform of a camera at ``eye`` looking at ``target``.

        The camera convention is +z forward, +x right, +y down (OpenCV).
        """
        eye = check_array(eye, "eye")
        target = check_array(target, "target")
        up = check_array(up, "up")
        forward = target - eye
        norm = np.linalg.norm(forward)
        if norm < _EPS:
            raise ValueError("eye and target coincide; cannot build look_at pose")
        forward = forward / norm
        right = np.cross(forward, up)
        if np.linalg.norm(right) < _EPS:
            # Forward parallel to up: pick an arbitrary orthogonal right vector.
            right = np.cross(forward, np.array([1.0, 0.0, 0.0]))
            if np.linalg.norm(right) < _EPS:
                right = np.cross(forward, np.array([0.0, 1.0, 0.0]))
        right = right / np.linalg.norm(right)
        down = np.cross(forward, right)
        rotation_wc = np.stack([right, down, forward], axis=1)  # camera-to-world
        rotation_cw = rotation_wc.T
        translation_cw = -rotation_cw @ eye
        return SE3(rotation_cw, translation_cw)

    # -- core operations ---------------------------------------------------
    def matrix(self) -> np.ndarray:
        """Return the 4x4 homogeneous matrix."""
        out = np.eye(4)
        out[:3, :3] = self.rotation
        out[:3, 3] = self.translation
        return out

    def inverse(self) -> "SE3":
        """Return the inverse transform."""
        rot_inv = self.rotation.T
        return SE3(rot_inv, -rot_inv @ self.translation)

    def compose(self, other: "SE3") -> "SE3":
        """Return ``self @ other`` (apply ``other`` first)."""
        return SE3(
            self.rotation @ other.rotation,
            self.rotation @ other.translation + self.translation,
        )

    def __matmul__(self, other: "SE3") -> "SE3":
        return self.compose(other)

    def apply(self, points: np.ndarray) -> np.ndarray:
        """Transform an ``(N, 3)`` array of points (or a single 3-vector)."""
        points = np.asarray(points, dtype=np.float64)
        single = points.ndim == 1
        pts = np.atleast_2d(points)
        out = pts @ self.rotation.T + self.translation
        return out[0] if single else out

    def log(self) -> np.ndarray:
        """Logarithm map to a 6-vector twist ``(rho, omega)``."""
        omega = so3_log(self.rotation)
        jac = _left_jacobian(omega)
        rho = np.linalg.solve(jac, self.translation)
        return np.concatenate([rho, omega])

    def retract(self, twist: np.ndarray) -> "SE3":
        """Left-multiplicative update ``exp(twist) @ self`` used by tracking."""
        return SE3.exp(twist) @ self

    def distance(self, other: "SE3") -> tuple[float, float]:
        """Return ``(translation_distance, rotation_angle_radians)`` to ``other``."""
        delta = self.inverse() @ other
        trans = float(np.linalg.norm(delta.translation))
        angle = float(np.linalg.norm(so3_log(delta.rotation)))
        return trans, angle

    def almost_equal(self, other: "SE3", atol: float = 1e-9) -> bool:
        """Return True when both transforms agree within ``atol``."""
        return bool(
            np.allclose(self.rotation, other.rotation, atol=atol)
            and np.allclose(self.translation, other.translation, atol=atol)
        )


def quaternion_to_rotation(quaternion: np.ndarray) -> np.ndarray:
    """Convert unit quaternions ``(N, 4)`` in ``(w, x, y, z)`` order to rotation matrices.

    Quaternions are normalised internally, matching the 3DGS convention of
    storing unconstrained quaternion parameters.
    """
    quat = np.atleast_2d(np.asarray(quaternion, dtype=np.float64))
    norm = np.linalg.norm(quat, axis=1, keepdims=True)
    norm = np.where(norm < _EPS, 1.0, norm)
    w, x, y, z = (quat / norm).T
    rot = np.empty((quat.shape[0], 3, 3))
    rot[:, 0, 0] = 1 - 2 * (y * y + z * z)
    rot[:, 0, 1] = 2 * (x * y - w * z)
    rot[:, 0, 2] = 2 * (x * z + w * y)
    rot[:, 1, 0] = 2 * (x * y + w * z)
    rot[:, 1, 1] = 1 - 2 * (x * x + z * z)
    rot[:, 1, 2] = 2 * (y * z - w * x)
    rot[:, 2, 0] = 2 * (x * z - w * y)
    rot[:, 2, 1] = 2 * (y * z + w * x)
    rot[:, 2, 2] = 1 - 2 * (x * x + y * y)
    if np.asarray(quaternion).ndim == 1:
        return rot[0]
    return rot


def rotation_to_quaternion(rotation: np.ndarray) -> np.ndarray:
    """Convert a rotation matrix to a unit quaternion in ``(w, x, y, z)`` order."""
    rotation = check_shape(check_array(rotation, "rotation"), (3, 3), "rotation")
    trace = np.trace(rotation)
    if trace > 0:
        s = 0.5 / np.sqrt(trace + 1.0)
        w = 0.25 / s
        x = (rotation[2, 1] - rotation[1, 2]) * s
        y = (rotation[0, 2] - rotation[2, 0]) * s
        z = (rotation[1, 0] - rotation[0, 1]) * s
    else:
        diag = np.diag(rotation)
        i = int(np.argmax(diag))
        j, k = (i + 1) % 3, (i + 2) % 3
        s = np.sqrt(max(rotation[i, i] - rotation[j, j] - rotation[k, k] + 1.0, _EPS)) * 2
        q = np.zeros(4)
        q[1 + i] = 0.25 * s
        q[0] = (rotation[k, j] - rotation[j, k]) / s
        q[1 + j] = (rotation[j, i] + rotation[i, j]) / s
        q[1 + k] = (rotation[k, i] + rotation[i, k]) / s
        w, x, y, z = q
    quat = np.array([w, x, y, z])
    return quat / np.linalg.norm(quat)
