"""Pinhole camera model with the intrinsics used across the SLAM pipeline.

The dynamic downsampling technique (Sec. 4.2 of the paper) renders
non-keyframes at reduced resolution; :meth:`Camera.downscale` produces the
matching scaled intrinsics so the rasterizer, loss, and hardware model all see
a consistent image size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class Camera:
    """Pinhole camera intrinsics.

    Attributes
    ----------
    width, height:
        Image resolution in pixels.
    fx, fy:
        Focal lengths in pixels.
    cx, cy:
        Principal point in pixels.
    """

    width: int
    height: int
    fx: float
    fy: float
    cx: float
    cy: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "width", int(self.width))
        object.__setattr__(self, "height", int(self.height))
        check_positive(self.width, "width")
        check_positive(self.height, "height")
        check_positive(self.fx, "fx")
        check_positive(self.fy, "fy")

    # -- constructors ------------------------------------------------------
    @staticmethod
    def from_fov(width: int, height: int, fov_x_degrees: float = 70.0) -> "Camera":
        """Create a camera from a horizontal field-of-view angle."""
        check_positive(fov_x_degrees, "fov_x_degrees")
        fov_x = np.deg2rad(fov_x_degrees)
        fx = width / (2.0 * np.tan(fov_x / 2.0))
        fy = fx
        return Camera(width, height, fx, fy, width / 2.0, height / 2.0)

    # -- geometry ----------------------------------------------------------
    @property
    def resolution(self) -> tuple[int, int]:
        """Return ``(height, width)``."""
        return self.height, self.width

    @property
    def n_pixels(self) -> int:
        """Total number of pixels."""
        return self.width * self.height

    def intrinsic_matrix(self) -> np.ndarray:
        """Return the 3x3 intrinsic matrix ``K``."""
        return np.array(
            [
                [self.fx, 0.0, self.cx],
                [0.0, self.fy, self.cy],
                [0.0, 0.0, 1.0],
            ]
        )

    def project(self, points_cam: np.ndarray) -> np.ndarray:
        """Project camera-frame points ``(N, 3)`` to pixel coordinates ``(N, 2)``.

        Points behind the camera produce non-finite values; callers are
        expected to cull by depth beforehand (see ``projection.project_gaussians``).
        """
        points_cam = np.atleast_2d(np.asarray(points_cam, dtype=np.float64))
        z = points_cam[:, 2]
        with np.errstate(divide="ignore", invalid="ignore"):
            u = self.fx * points_cam[:, 0] / z + self.cx
            v = self.fy * points_cam[:, 1] / z + self.cy
        return np.stack([u, v], axis=1)

    def unproject(self, pixels: np.ndarray, depths: np.ndarray) -> np.ndarray:
        """Back-project pixel coordinates ``(N, 2)`` at ``depths`` to camera-frame points."""
        pixels = np.atleast_2d(np.asarray(pixels, dtype=np.float64))
        depths = np.asarray(depths, dtype=np.float64).reshape(-1)
        x = (pixels[:, 0] - self.cx) / self.fx * depths
        y = (pixels[:, 1] - self.cy) / self.fy * depths
        return np.stack([x, y, depths], axis=1)

    def pixel_grid(self) -> np.ndarray:
        """Return an ``(H, W, 2)`` array of (u, v) pixel-centre coordinates."""
        us = np.arange(self.width, dtype=np.float64) + 0.5
        vs = np.arange(self.height, dtype=np.float64) + 0.5
        grid_u, grid_v = np.meshgrid(us, vs)
        return np.stack([grid_u, grid_v], axis=-1)

    def downscale(self, factor: float) -> "Camera":
        """Return a camera whose *pixel count* is reduced by ``factor``.

        The paper expresses non-keyframe resolutions as fractions of the full
        resolution ``R0`` (e.g. ``R0 / 16``), i.e. a reduction in total pixel
        count.  Width and height therefore each shrink by ``sqrt(factor)``.
        """
        check_positive(factor, "factor")
        if factor < 1.0:
            raise ValueError(f"downscale factor must be >= 1, got {factor}")
        linear = float(np.sqrt(factor))
        new_width = max(8, int(round(self.width / linear)))
        new_height = max(8, int(round(self.height / linear)))
        scale_x = new_width / self.width
        scale_y = new_height / self.height
        return Camera(
            new_width,
            new_height,
            self.fx * scale_x,
            self.fy * scale_y,
            self.cx * scale_x,
            self.cy * scale_y,
        )

    def scale_resolution(self, scale: float) -> "Camera":
        """Return a camera with width/height each multiplied by ``scale``."""
        check_positive(scale, "scale")
        new_width = max(8, int(round(self.width * scale)))
        new_height = max(8, int(round(self.height * scale)))
        return Camera(
            new_width,
            new_height,
            self.fx * new_width / self.width,
            self.fy * new_height / self.height,
            self.cx * new_width / self.width,
            self.cy * new_height / self.height,
        )
