"""Step 1-1 *Projection*: 3D Gaussians to screen-space 2D Gaussians.

Implements the EWA splatting projection used by 3DGS: the world-frame
covariance is pushed through the camera rotation and the perspective Jacobian
to obtain a 2D covariance on the image plane.  All intermediates needed by the
backward pass (camera-frame points, Jacobians, 3D covariances) are kept on the
returned structure so Step 5 *Preprocessing BP* can reuse them - the same reuse
the RTGS R&B Buffer exploits in hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.gaussian_model import GaussianCloud
from repro.gaussians.se3 import SE3

# Screen-space dilation added to the 2D covariance, as in the reference
# implementation, to guarantee a minimum splat footprint of ~one pixel.
COV2D_DILATION = 0.3
# Gaussians closer than this to the camera plane are culled.
NEAR_PLANE = 0.05
# Splat radius in standard deviations used for tile intersection tests.
RADIUS_SIGMAS = 3.0
# Frustum-culling margin: Gaussians whose centre lies outside this multiple of
# the view frustum are discarded.  Points that sit almost in the camera plane
# (tiny z, large lateral offset) otherwise produce degenerate EWA splats that
# smear across the whole image and occlude the scene.
FRUSTUM_MARGIN = 2.0


@dataclass
class ProjectedGaussians:
    """Screen-space Gaussians plus the intermediates required for backprop.

    ``indices`` maps each projected Gaussian back to its row in the source
    :class:`~repro.gaussians.gaussian_model.GaussianCloud`.
    """

    indices: np.ndarray  # (M,) int
    means2d: np.ndarray  # (M, 2)
    depths: np.ndarray  # (M,)
    cov2d: np.ndarray  # (M, 2, 2)
    conics: np.ndarray  # (M, 2, 2) inverse 2D covariances
    radii: np.ndarray  # (M,)
    colors: np.ndarray  # (M, 3)
    opacities: np.ndarray  # (M,)
    points_cam: np.ndarray  # (M, 3)
    jacobians: np.ndarray  # (M, 2, 3) perspective Jacobians
    cov3d: np.ndarray  # (M, 3, 3) world-frame covariances
    rotation_cw: np.ndarray  # (3, 3) world-to-camera rotation
    camera: Camera
    pose_cw: SE3

    @property
    def n_visible(self) -> int:
        """Number of Gaussians that survived culling."""
        return int(self.indices.shape[0])


@dataclass
class SharedGaussianData:
    """View-independent per-Gaussian quantities shared across a render batch.

    Projection splits into a view-independent half (which Gaussians are
    candidates, their world covariances, opacities and colours — the paper's
    Step 1 per-Gaussian preprocessing plus the SH/colour evaluation) and a
    view-dependent half (camera transform, culling, EWA linearisation).  The
    batched rasterizer computes this structure once per mapping iteration and
    reuses it for every view in the keyframe window; the single-view path
    builds it on the fly, so both paths run identical per-row arithmetic.
    """

    indices: np.ndarray  # (K,) candidate rows of the source cloud
    positions: np.ndarray  # (K, 3) world-frame means
    cov3d: np.ndarray  # (K, 3, 3) world-frame covariances
    opacities: np.ndarray  # (K,) post-sigmoid opacities
    colors: np.ndarray  # (K, 3) evaluated colours (the SH DC term)

    @property
    def n_candidates(self) -> int:
        return int(self.indices.shape[0])


def shared_preprocess(cloud: GaussianCloud, active_only: bool = True) -> SharedGaussianData:
    """Compute the view-independent half of projection for ``cloud``.

    Only candidate (active) rows are materialised, so a batch of ``V`` views
    pays for covariance assembly, the opacity sigmoid and colour evaluation
    once instead of ``V`` times.  Row-wise results are identical to what
    :func:`project_gaussians` previously derived internally.
    """
    if active_only:
        candidate = cloud.active_indices()
    else:
        candidate = np.arange(len(cloud))
    if candidate.size == 0:
        return SharedGaussianData(
            indices=candidate.astype(int),
            positions=np.zeros((0, 3)),
            cov3d=np.zeros((0, 3, 3)),
            opacities=np.zeros(0),
            colors=np.zeros((0, 3)),
        )
    return SharedGaussianData(
        indices=candidate,
        positions=cloud.positions[candidate],
        cov3d=cloud.covariances(rows=candidate),
        opacities=cloud.opacities(rows=candidate),
        colors=cloud.colors[candidate],
    )


def perspective_jacobian(points_cam: np.ndarray, camera: Camera) -> np.ndarray:
    """Return the ``(M, 2, 3)`` Jacobian of the pinhole projection at ``points_cam``."""
    points_cam = np.atleast_2d(points_cam)
    x, y, z = points_cam[:, 0], points_cam[:, 1], points_cam[:, 2]
    inv_z = 1.0 / z
    inv_z2 = inv_z * inv_z
    jac = np.zeros((points_cam.shape[0], 2, 3))
    jac[:, 0, 0] = camera.fx * inv_z
    jac[:, 0, 2] = -camera.fx * x * inv_z2
    jac[:, 1, 1] = camera.fy * inv_z
    jac[:, 1, 2] = -camera.fy * y * inv_z2
    return jac


def project_gaussians(
    cloud: GaussianCloud,
    camera: Camera,
    pose_cw: SE3,
    active_only: bool = True,
    shared: SharedGaussianData | None = None,
) -> ProjectedGaussians:
    """Project the Gaussians of ``cloud`` into the image plane of ``camera``.

    Gaussians behind the near plane or whose splat falls entirely outside the
    image are culled.  When ``active_only`` is True (the default), Gaussians
    masked by the adaptive pruner are skipped, which is exactly how the
    mask-prune strategy removes them from the rendering workload.  Passing a
    precomputed ``shared`` structure (see :func:`shared_preprocess`) skips the
    view-independent work; the batched rasterizer amortises it across views.
    """
    if shared is None:
        shared = shared_preprocess(cloud, active_only=active_only)
    candidate = shared.indices

    if candidate.size == 0:
        return _empty_projection(camera, pose_cw)

    rotation_cw = pose_cw.rotation
    points_cam = shared.positions @ rotation_cw.T + pose_cw.translation

    in_front = points_cam[:, 2] > NEAR_PLANE
    # Frustum cull with a generous margin: rejects points nearly in the camera
    # plane whose EWA linearisation would be numerically meaningless.
    tan_x = FRUSTUM_MARGIN * (camera.width / 2.0) / camera.fx
    tan_y = FRUSTUM_MARGIN * (camera.height / 2.0) / camera.fy
    with np.errstate(divide="ignore", invalid="ignore"):
        in_frustum = (
            (np.abs(points_cam[:, 0]) <= tan_x * points_cam[:, 2])
            & (np.abs(points_cam[:, 1]) <= tan_y * points_cam[:, 2])
        )
    keep_mask = in_front & in_frustum
    candidate = candidate[keep_mask]
    points_cam = points_cam[keep_mask]
    if candidate.size == 0:
        return _empty_projection(camera, pose_cw)

    means2d = camera.project(points_cam)
    depths = points_cam[:, 2]

    cov3d = shared.cov3d[keep_mask]
    colors_candidate = shared.colors[keep_mask]
    opacities_candidate = shared.opacities[keep_mask]
    jac = perspective_jacobian(points_cam, camera)
    # M = J @ R_cw is the full 2x3 linearisation of world point -> pixel.
    m_lin = jac @ rotation_cw
    cov2d = m_lin @ cov3d @ np.transpose(m_lin, (0, 2, 1))
    cov2d[:, 0, 0] += COV2D_DILATION
    cov2d[:, 1, 1] += COV2D_DILATION

    det = cov2d[:, 0, 0] * cov2d[:, 1, 1] - cov2d[:, 0, 1] * cov2d[:, 1, 0]
    det = np.maximum(det, 1e-12)
    conics = np.empty_like(cov2d)
    conics[:, 0, 0] = cov2d[:, 1, 1] / det
    conics[:, 1, 1] = cov2d[:, 0, 0] / det
    conics[:, 0, 1] = -cov2d[:, 0, 1] / det
    conics[:, 1, 0] = -cov2d[:, 1, 0] / det

    # Splat radius from the dominant eigenvalue of the 2D covariance.
    mid = 0.5 * (cov2d[:, 0, 0] + cov2d[:, 1, 1])
    lambda_max = mid + np.sqrt(np.maximum(mid * mid - det, 0.0))
    radii = np.ceil(RADIUS_SIGMAS * np.sqrt(lambda_max))

    # Cull splats that cannot touch the image.
    on_screen = (
        (means2d[:, 0] + radii > 0)
        & (means2d[:, 0] - radii < camera.width)
        & (means2d[:, 1] + radii > 0)
        & (means2d[:, 1] - radii < camera.height)
    )
    keep = on_screen
    return ProjectedGaussians(
        indices=candidate[keep],
        means2d=means2d[keep],
        depths=depths[keep],
        cov2d=cov2d[keep],
        conics=conics[keep],
        radii=radii[keep],
        colors=colors_candidate[keep],
        opacities=opacities_candidate[keep],
        points_cam=points_cam[keep],
        jacobians=jac[keep],
        cov3d=cov3d[keep],
        rotation_cw=rotation_cw,
        camera=camera,
        pose_cw=pose_cw,
    )


def _empty_projection(camera: Camera, pose_cw: SE3) -> ProjectedGaussians:
    return ProjectedGaussians(
        indices=np.zeros(0, dtype=int),
        means2d=np.zeros((0, 2)),
        depths=np.zeros(0),
        cov2d=np.zeros((0, 2, 2)),
        conics=np.zeros((0, 2, 2)),
        radii=np.zeros(0),
        colors=np.zeros((0, 3)),
        opacities=np.zeros(0),
        points_cam=np.zeros((0, 3)),
        jacobians=np.zeros((0, 2, 3)),
        cov3d=np.zeros((0, 3, 3)),
        rotation_cw=pose_cw.rotation,
        camera=camera,
        pose_cw=pose_cw,
    )
