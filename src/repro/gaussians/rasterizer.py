"""Step 3 *Rendering*: tile-based alpha compositing of 2D Gaussians.

The rasterizer follows the 3DGS forward pipeline exactly (Eq. 2-3 of the
paper): per-fragment alpha computation, front-to-back alpha blending with
early termination once the accumulated transmittance falls below a threshold,
and per-pixel colour/depth accumulation.

Two aspects matter for the rest of the reproduction:

* every per-fragment intermediate (alpha, Gaussian value, transmittance,
  blending weight) is kept in per-tile caches.  The backward pass reuses them
  instead of recomputing - this is the software analogue of the R&B Buffer,
  and it is also what the hardware model reads to build its cycle traces;
* per-pixel *fragment counts* (how many Gaussians were actually processed
  before early termination) are recorded, because they define the workload
  imbalance that the WSU's subtile streaming and pairwise scheduling attack.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.gaussian_model import GaussianCloud
from repro.gaussians.projection import ProjectedGaussians, project_gaussians
from repro.gaussians.se3 import SE3
from repro.gaussians.sorting import TileIntersections, build_tile_lists
from repro.gaussians.tiling import TileGrid

if TYPE_CHECKING:
    from repro.gaussians.geom_cache import GeometryCache

# Fragments with alpha below this threshold contribute nothing (1/255, as in
# the reference implementation).
ALPHA_CUTOFF = 1.0 / 255.0
# Alpha values are clamped below this to keep (1 - alpha) invertible in BP.
ALPHA_CLAMP = 0.99
# Early termination: stop compositing a pixel once transmittance drops below this.
TRANSMITTANCE_EPS = 1e-4

# The built-in rasterizer implementations: "flat" is the flat fragment-list
# fast path (repro.gaussians.fast_raster) and the production default; "tile"
# is the reference per-tile loop, retired to a reference-only role behind the
# differential harness (repro.testing) and the golden fixtures.  The full set
# of available backends (built-ins plus anything registered through
# repro.engine.register_backend) lives in the engine's BackendRegistry.
BACKENDS = ("tile", "flat")

# The flat backend soaked behind DifferentialRunner through PR 1 and is now
# the process-wide default; REPRO_RASTER_BACKEND=tile is the escape hatch back
# to the reference loop.
DEFAULT_BACKEND = "flat"

# Process-default backend name; seeded lazily from EngineConfig.from_env()
# (the consolidated REPRO_RASTER_BACKEND read) on first use.
_default_backend: str | None = None


def _registered_backends() -> tuple[str, ...]:
    from repro.engine.registry import REGISTRY

    return REGISTRY.names()


def get_default_backend() -> str:
    """Return the backend used when no backend is named explicitly."""
    global _default_backend
    if _default_backend is None:
        from repro.engine.config import EngineConfig

        _default_backend = EngineConfig.from_env().backend or DEFAULT_BACKEND
    return _default_backend


def set_default_backend(name: str) -> str:
    """Set the process-wide default backend; returns the previous one.

    Lets whole-pipeline callers (SLAM runs, benchmarks) opt into the flat
    fast path without threading an argument through every call site.  The
    ``REPRO_RASTER_BACKEND`` environment variable seeds the initial default
    (via :meth:`repro.engine.EngineConfig.from_env`); any backend registered
    through :func:`repro.engine.register_backend` is accepted.
    """
    global _default_backend
    if name not in _registered_backends():
        raise ValueError(
            f"unknown rasterizer backend {name!r}; expected one of {_registered_backends()}"
        )
    previous = get_default_backend()
    _default_backend = name
    return previous


@contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Context manager scoping :func:`set_default_backend` to a block."""
    previous = set_default_backend(name)
    try:
        yield
    finally:
        set_default_backend(previous)


@dataclass
class TileRenderCache:
    """Per-tile intermediates produced by the forward pass and reused in BP."""

    tile_id: int
    rows: np.ndarray  # (M,) projected-Gaussian rows, depth sorted
    pixel_coords: np.ndarray  # (P, 2) pixel centres
    pixel_indices: tuple[np.ndarray, np.ndarray]  # (v_idx, u_idx) into the image
    deltas: np.ndarray  # (P, M, 2) pixel - mean2d
    gauss_values: np.ndarray  # (P, M) exp(power)
    alphas: np.ndarray  # (P, M) clipped opacities * gauss
    transmittance_before: np.ndarray  # (P, M)
    weights: np.ndarray  # (P, M) blending weights after termination masking
    processed: np.ndarray  # (P, M) bool: fragment handled before early termination
    clamp_mask: np.ndarray  # (P, M) bool: True where alpha hit the 0.99 clamp

    @property
    def n_pixels(self) -> int:
        return self.pixel_coords.shape[0]

    @property
    def n_gaussians(self) -> int:
        return self.rows.shape[0]

    def fragments_per_pixel(self) -> np.ndarray:
        """Number of fragments actually processed for each pixel of the tile."""
        if self.processed.size == 0:
            return np.zeros(self.n_pixels, dtype=int)
        return self.processed.sum(axis=1).astype(int)


@dataclass
class RenderResult:
    """Output of :func:`rasterize` plus everything the backward pass needs."""

    image: np.ndarray  # (H, W, 3)
    depth: np.ndarray  # (H, W)
    alpha: np.ndarray  # (H, W) accumulated opacity
    fragments_per_pixel: np.ndarray  # (H, W) int
    projected: ProjectedGaussians
    intersections: TileIntersections
    tile_caches: list[TileRenderCache]
    camera: Camera
    pose_cw: SE3
    background: np.ndarray = field(default_factory=lambda: np.zeros(3))
    backend: str = "tile"  # which rasterizer implementation produced this result
    # How the geometry cache served this render: "uncached" (no cache in
    # play), "miss" (full Step 1-2 rebuild), "hit", "refresh" or
    # "incremental" (see repro.gaussians.geom_cache).  Consumed by workload
    # snapshots, the hardware cost model and profiling.
    cache_status: str = "uncached"

    @property
    def grid(self) -> TileGrid:
        return self.intersections.grid

    @property
    def n_fragments(self) -> int:
        """Total fragments processed across the image (the rendering workload)."""
        return int(self.fragments_per_pixel.sum())

    def fragments_per_subtile(self) -> np.ndarray:
        """Return per-(tile, subtile) fragment counts, shape ``(n_tiles, subtiles_per_tile)``.

        This is the workload that RTGS streams to Rendering Engines one subtile
        at a time.
        """
        grid = self.grid
        counts = np.zeros((grid.n_tiles, grid.subtiles_per_tile), dtype=int)
        for cache in self.tile_caches:
            per_pixel = cache.fragments_per_pixel()
            subtile_ids = grid.subtile_of_pixel_offsets(cache.tile_id)[: len(per_pixel)]
            np.add.at(counts[cache.tile_id], subtile_ids, per_pixel)
        return counts


def rasterize(
    cloud: GaussianCloud,
    camera: Camera,
    pose_cw: SE3,
    background: np.ndarray | None = None,
    tile_size: int = 16,
    subtile_size: int = 4,
    active_only: bool = True,
    precomputed: tuple[ProjectedGaussians, TileIntersections] | None = None,
    backend: str | None = None,
    cache: "GeometryCache | None" = None,
) -> RenderResult:
    """Deprecated shim: render one view through the process-default engine.

    Equivalent to ``repro.engine.default_engine().render(...)`` with the same
    arguments (``backend=None`` follows :func:`get_default_backend`, an
    explicit ``cache`` is passed through unmanaged), so existing call sites
    stay bit-identical.  New code should construct or inject a
    :class:`repro.engine.RenderEngine` instead.
    """
    from repro.engine import default_engine
    from repro.utils.deprecation import warn_render_shim

    warn_render_shim("rasterize", "RenderEngine.render")
    return default_engine().render(
        cloud,
        camera,
        pose_cw,
        background=background,
        tile_size=tile_size,
        subtile_size=subtile_size,
        active_only=active_only,
        precomputed=precomputed,
        backend=backend,
        cache=cache,
    )


def rasterize_tile(
    cloud: GaussianCloud,
    camera: Camera,
    pose_cw: SE3,
    background: np.ndarray | None = None,
    tile_size: int = 16,
    subtile_size: int = 4,
    active_only: bool = True,
    precomputed: tuple[ProjectedGaussians, TileIntersections] | None = None,
) -> RenderResult:
    """Reference per-tile render of ``cloud`` from ``pose_cw`` (world-to-camera).

    This is the bit-exact reference implementation behind the ``tile``
    backend, the golden fixtures and the differential harness.  ``precomputed``
    optionally carries a ``(projected, intersections)`` pair — RTGS reuses the
    Step 1-2 results across the iterations of a pruning window (Sec. 4.1);
    passing them skips projection, tile intersection and sorting.
    """
    if background is None:
        background = np.zeros(3)
    background = np.asarray(background, dtype=np.float64).reshape(3)

    if precomputed is not None:
        projected, intersections = precomputed
        grid = intersections.grid
    else:
        projected = project_gaussians(cloud, camera, pose_cw, active_only=active_only)
        grid = TileGrid(camera.width, camera.height, tile_size, subtile_size)
        intersections = build_tile_lists(projected, grid)

    height, width = camera.height, camera.width
    image = np.tile(background, (height, width, 1))
    depth = np.zeros((height, width))
    alpha_map = np.zeros((height, width))
    fragments = np.zeros((height, width), dtype=int)
    tile_caches: list[TileRenderCache] = []

    for tile_id, rows in enumerate(intersections.per_tile):
        if rows.size == 0:
            continue
        cache = _render_tile(tile_id, rows, projected, grid)
        tile_caches.append(cache)

        v_idx, u_idx = cache.pixel_indices
        weights = cache.weights
        colors = projected.colors[rows]
        depths = projected.depths[rows]
        pixel_color = weights @ colors
        pixel_depth = weights @ depths
        pixel_alpha = weights.sum(axis=1)

        image[v_idx, u_idx] = pixel_color + (1.0 - pixel_alpha)[:, None] * background
        depth[v_idx, u_idx] = pixel_depth
        alpha_map[v_idx, u_idx] = pixel_alpha
        fragments[v_idx, u_idx] = cache.fragments_per_pixel()

    return RenderResult(
        image=np.clip(image, 0.0, 1.0),
        depth=depth,
        alpha=alpha_map,
        fragments_per_pixel=fragments,
        projected=projected,
        intersections=intersections,
        tile_caches=tile_caches,
        camera=camera,
        pose_cw=pose_cw,
        background=background,
    )


def _render_tile(
    tile_id: int,
    rows: np.ndarray,
    projected: ProjectedGaussians,
    grid: TileGrid,
) -> TileRenderCache:
    """Composite one tile: alpha computing + alpha blending with early termination."""
    pixel_coords = grid.tile_pixel_coordinates(tile_id)
    x0, y0, x1, y1 = grid.tile_bounds(tile_id)
    us = np.arange(x0, x1)
    vs = np.arange(y0, y1)
    grid_u, grid_v = np.meshgrid(us, vs)
    pixel_indices = (grid_v.ravel(), grid_u.ravel())

    means = projected.means2d[rows]  # (M, 2)
    conics = projected.conics[rows]  # (M, 2, 2)
    opacities = projected.opacities[rows]  # (M,)

    # Step 3-1 Alpha computing (vectorised over the P x M fragment grid).
    deltas = pixel_coords[:, None, :] - means[None, :, :]  # (P, M, 2)
    a = conics[:, 0, 0]
    b = conics[:, 0, 1]
    c = conics[:, 1, 1]
    power = -0.5 * (
        a[None, :] * deltas[:, :, 0] ** 2
        + 2.0 * b[None, :] * deltas[:, :, 0] * deltas[:, :, 1]
        + c[None, :] * deltas[:, :, 1] ** 2
    )
    power = np.minimum(power, 0.0)
    gauss_values = np.exp(power)

    raw_alpha = opacities[None, :] * gauss_values
    clamp_mask = raw_alpha > ALPHA_CLAMP
    alphas = np.minimum(raw_alpha, ALPHA_CLAMP)
    alphas = np.where(alphas < ALPHA_CUTOFF, 0.0, alphas)

    # Step 3-2 Alpha blending: transmittance, early termination, weights.
    one_minus = 1.0 - alphas
    trans_after = np.cumprod(one_minus, axis=1)
    trans_before = np.concatenate(
        [np.ones((alphas.shape[0], 1)), trans_after[:, :-1]], axis=1
    )
    processed = trans_before >= TRANSMITTANCE_EPS
    weights = trans_before * alphas * processed

    return TileRenderCache(
        tile_id=tile_id,
        rows=rows,
        pixel_coords=pixel_coords,
        pixel_indices=pixel_indices,
        deltas=deltas,
        gauss_values=gauss_values,
        alphas=alphas,
        transmittance_before=trans_before,
        weights=weights,
        processed=processed,
        clamp_mask=clamp_mask,
    )
