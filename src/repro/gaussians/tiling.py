"""Step 1-2 *Tile intersection*: assigning 2D Gaussians to image tiles.

The image is partitioned into 16x16-pixel tiles (the GPU rasterizer
convention followed by the paper).  RTGS further splits each tile into 4x4
*subtiles*, the unit of work dispatched to one Rendering Engine; the
:class:`TileGrid` exposes both granularities so the hardware model and the
rasterizer agree on the pixel-to-unit mapping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gaussians.projection import ProjectedGaussians

DEFAULT_TILE_SIZE = 16
DEFAULT_SUBTILE_SIZE = 4


@dataclass(frozen=True)
class TileGrid:
    """Partition of a ``width`` x ``height`` image into square tiles and subtiles."""

    width: int
    height: int
    tile_size: int = DEFAULT_TILE_SIZE
    subtile_size: int = DEFAULT_SUBTILE_SIZE

    def __post_init__(self) -> None:
        if self.tile_size <= 0 or self.subtile_size <= 0:
            raise ValueError("tile_size and subtile_size must be positive")
        if self.tile_size % self.subtile_size != 0:
            raise ValueError(
                f"tile_size ({self.tile_size}) must be a multiple of subtile_size "
                f"({self.subtile_size})"
            )
        # Per-tile pixel-coordinate memo: pure view geometry, so renders that
        # share a grid instance (the geometry cache keeps one per view entry)
        # build each tile's coordinate block once instead of per render.  The
        # dataclass is frozen, hence the object.__setattr__.
        object.__setattr__(self, "_pixel_coords", {})

    # -- tile level ---------------------------------------------------------
    @property
    def n_tiles_x(self) -> int:
        return (self.width + self.tile_size - 1) // self.tile_size

    @property
    def n_tiles_y(self) -> int:
        return (self.height + self.tile_size - 1) // self.tile_size

    @property
    def n_tiles(self) -> int:
        return self.n_tiles_x * self.n_tiles_y

    def tile_bounds(self, tile_id: int) -> tuple[int, int, int, int]:
        """Return ``(x0, y0, x1, y1)`` pixel bounds (exclusive upper) of a tile."""
        if not 0 <= tile_id < self.n_tiles:
            raise IndexError(f"tile_id {tile_id} out of range [0, {self.n_tiles})")
        ty, tx = divmod(tile_id, self.n_tiles_x)
        x0 = tx * self.tile_size
        y0 = ty * self.tile_size
        return x0, y0, min(x0 + self.tile_size, self.width), min(y0 + self.tile_size, self.height)

    def tile_pixel_coordinates(self, tile_id: int) -> np.ndarray:
        """Return the ``(P, 2)`` pixel-centre (u, v) coordinates inside a tile.

        Memoised per tile (callers must not mutate the returned array).
        """
        cached = self._pixel_coords.get(tile_id)
        if cached is not None:
            return cached
        x0, y0, x1, y1 = self.tile_bounds(tile_id)
        us = np.arange(x0, x1, dtype=np.float64) + 0.5
        vs = np.arange(y0, y1, dtype=np.float64) + 0.5
        grid_u, grid_v = np.meshgrid(us, vs)
        coords = np.stack([grid_u.ravel(), grid_v.ravel()], axis=1)
        self._pixel_coords[tile_id] = coords
        return coords

    # -- subtile level --------------------------------------------------------
    @property
    def subtiles_per_tile(self) -> int:
        per_side = self.tile_size // self.subtile_size
        return per_side * per_side

    @property
    def pixels_per_subtile(self) -> int:
        return self.subtile_size * self.subtile_size

    def subtile_of_pixel_offsets(self, tile_id: int) -> np.ndarray:
        """Return the subtile index (within the tile) of each pixel of ``tile_id``.

        The array is aligned with :meth:`tile_pixel_coordinates` (row-major over
        the tile's pixels).
        """
        x0, y0, x1, y1 = self.tile_bounds(tile_id)
        us = np.arange(x0, x1)
        vs = np.arange(y0, y1)
        grid_u, grid_v = np.meshgrid(us, vs)
        local_u = grid_u - x0
        local_v = grid_v - y0
        per_side = self.tile_size // self.subtile_size
        subtile = (local_v // self.subtile_size) * per_side + (local_u // self.subtile_size)
        return subtile.ravel()

    # -- assignment -----------------------------------------------------------
    def tiles_overlapping(self, mean2d: np.ndarray, radius: float) -> np.ndarray:
        """Return the tile ids whose pixel rectangle overlaps the splat bounding box."""
        x_min = int(np.floor((mean2d[0] - radius) / self.tile_size))
        x_max = int(np.floor((mean2d[0] + radius) / self.tile_size))
        y_min = int(np.floor((mean2d[1] - radius) / self.tile_size))
        y_max = int(np.floor((mean2d[1] + radius) / self.tile_size))
        x_min = max(x_min, 0)
        y_min = max(y_min, 0)
        x_max = min(x_max, self.n_tiles_x - 1)
        y_max = min(y_max, self.n_tiles_y - 1)
        if x_max < x_min or y_max < y_min:
            return np.zeros(0, dtype=int)
        xs = np.arange(x_min, x_max + 1)
        ys = np.arange(y_min, y_max + 1)
        grid_x, grid_y = np.meshgrid(xs, ys)
        return (grid_y * self.n_tiles_x + grid_x).ravel()


def assign_tiles(projected: ProjectedGaussians, grid: TileGrid) -> list[np.ndarray]:
    """Assign each projected Gaussian to the tiles its bounding box overlaps.

    Returns a list of length ``grid.n_tiles``; entry ``t`` holds the projected
    indices (rows of ``projected``) that intersect tile ``t``, in input order
    (depth sorting happens in :mod:`repro.gaussians.sorting`).

    Fully vectorised: all (Gaussian, tile) pairs are materialised in one
    expansion and grouped with a stable sort, which preserves the ascending
    row order per tile the per-Gaussian loop used to produce.  On SLAM-sized
    scenes this step used to cost as much as rasterization itself.
    """
    empty = [np.zeros(0, dtype=int) for _ in range(grid.n_tiles)]
    n_visible = projected.n_visible
    if n_visible == 0:
        return empty
    means = projected.means2d
    radii = projected.radii
    tile = grid.tile_size
    x_min = np.maximum(np.floor((means[:, 0] - radii) / tile).astype(np.int64), 0)
    x_max = np.minimum(
        np.floor((means[:, 0] + radii) / tile).astype(np.int64), grid.n_tiles_x - 1
    )
    y_min = np.maximum(np.floor((means[:, 1] - radii) / tile).astype(np.int64), 0)
    y_max = np.minimum(
        np.floor((means[:, 1] + radii) / tile).astype(np.int64), grid.n_tiles_y - 1
    )
    span_x = np.maximum(x_max - x_min + 1, 0)
    span_y = np.maximum(y_max - y_min + 1, 0)
    counts = span_x * span_y
    total = int(counts.sum())
    if total == 0:
        return empty

    rows = np.repeat(np.arange(n_visible), counts)
    # Rank of each pair within its Gaussian's tile rectangle (row-major).
    first_pair = np.cumsum(counts) - counts
    rank = np.arange(total) - np.repeat(first_pair, counts)
    span_x_pairs = np.repeat(span_x, counts)
    tile_x = np.repeat(x_min, counts) + rank % span_x_pairs
    tile_y = np.repeat(y_min, counts) + rank // span_x_pairs
    tile_ids = tile_y * grid.n_tiles_x + tile_x

    order = np.argsort(tile_ids, kind="stable")
    tile_ids = tile_ids[order]
    rows = rows[order]
    boundaries = np.searchsorted(tile_ids, np.arange(grid.n_tiles + 1))
    return [rows[boundaries[t] : boundaries[t + 1]] for t in range(grid.n_tiles)]
