"""Cross-iteration geometry cache: RTGS-style Step 1-2 reuse across renders.

Consecutive SLAM mapping iterations re-render the *same* keyframe window
against a cloud that moves only slightly per Adam step, so the view-dependent
preprocessing — Step 1 projection and Step 2 tile intersection / sorting /
flat fragment build — is largely redundant work (the reuse the paper applies
across the iterations of one pruning window, Sec. 4.1).  This module memoises
that pipeline per view, keyed by the cloud's mutation epoch
(:attr:`repro.gaussians.gaussian_model.GaussianCloud.epoch`), with four reuse
tiers ordered from exact to approximate:

``hit``
    The cloud has not mutated since the entry was built: every Step 1-2
    product (:class:`ProjectedGaussians`, :class:`TileIntersections`,
    :class:`FlatFragments`) is reused as-is.  Bit-identical.
``refresh``
    Only colours and/or opacities changed.  Geometry (means, covariances,
    culling, tile lists, depth order) is untouched by those parameters, so
    the cached entry is reused with the fresh appearance values gathered from
    the cloud.  Bit-identical to a full rebuild.
``incremental``
    Means and/or scales also moved, but the cloud's cumulative per-epoch
    movement bounds (:attr:`GaussianCloud.cum_position_delta` /
    ``cum_log_scale_delta`` — the per-epoch dirty flags) translate to a
    screen-space drift below ``tolerance_px``.  Tile assignment and fragment
    ordering are reused with the stale geometry; only the per-fragment
    alpha/colour inputs (opacities, colours) are recomputed.  Approximate,
    bounded by the tolerance; ``tolerance_px=0`` disables this tier.
``miss``
    Anything else — in particular any structural change (densify, prune,
    masking, ``notify_removed``) — rebuilds the full Step 1-2 pipeline and
    replaces the entry.

On top of tier reuse the cache recycles two render-to-render artefacts:

* the **flat fragment arena** is shared grow-only across *all* renders and
  batches served by one cache (``ensure_flat_arena`` keeps the high-water
  mark), not just within one ``rasterize_batch`` call;
* the previous render's per-tile alphas and transmittances (the software
  analogue of reading the R&B Buffer back) refine the **fragment schedule**
  of the next render of the same view two ways:

  - *contributing-pair refinement*: Gaussians whose bounding box touched a
    tile but whose alpha stayed below ``ALPHA_CUTOFF / refine_margin`` for
    every pixel of that tile are dropped — fragments below the cutoff are
    exactly zero in the compositor, so this is exact at the epoch it was
    measured and drifts only as far as the tolerance allows between
    rebuilds (``refine_margin=0`` disables it);
  - *termination-depth truncation*: each tile's depth-sorted list is capped
    at the deepest fragment any of its pixels actually processed before
    early termination, plus ``termination_margin`` headroom.  Every cached
    render verifies the cap — a capped tile where any pixel's final
    transmittance is still above the termination threshold triggers a dense
    re-render of the view — so surviving renders are exact, including the
    per-pixel fragment counts (``termination_margin=0`` disables it).

Because cached renders share one arena, a render must be fully consumed
(backward pass included) before the next render is requested from the same
cache.  The batched rasterizer gives every view of a batch its own base
offset, so all views of one batch coexist.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.fast_raster import (
    FlatArena,
    FlatFragments,
    build_flat_fragments,
    ensure_flat_arena,
    rasterize_flat_into,
)
from repro.gaussians.gaussian_model import GaussianCloud
from repro.gaussians.projection import (
    ProjectedGaussians,
    SharedGaussianData,
    project_gaussians,
)
from repro.gaussians.rasterizer import ALPHA_CUTOFF, TRANSMITTANCE_EPS, RenderResult
from repro.gaussians.se3 import SE3
from repro.gaussians.sorting import TileIntersections, build_tile_lists
from repro.gaussians.tiling import TileGrid

CACHE_STATUSES = ("uncached", "miss", "hit", "refresh", "incremental")


def geom_cache_enabled() -> bool:
    """True unless the ``REPRO_GEOM_CACHE=0`` escape hatch disables caching.

    The environment parsing itself is consolidated in
    :meth:`repro.engine.EngineConfig.from_env`; this wrapper survives for
    callers that only need the boolean (engines read the full config).
    """
    from repro.engine.config import geom_cache_enabled_from_env

    return geom_cache_enabled_from_env()


@dataclass(frozen=True)
class GeomCacheConfig:
    """Knobs of the geometry cache.

    ``tolerance_px`` bounds the screen-space drift (pixels) under which stale
    geometry may be reused; 0 restricts the cache to its exact tiers.
    ``refine_margin`` is the headroom factor on the alpha cutoff for
    contributing-pair refinement (a pair is kept while its best per-pixel
    alpha is at least ``ALPHA_CUTOFF / refine_margin``); 0 disables
    refinement, keeping cached renders bit-identical to uncached ones on the
    exact tiers.  ``termination_margin`` is the fractional headroom on the
    per-tile termination depth used to truncate fragment lists (0 disables
    truncation); truncated renders self-verify and fall back to a dense
    re-render when the headroom was exceeded.  ``max_entries`` caps the
    number of cached views (LRU).
    """

    tolerance_px: float = 0.5
    refine_margin: float = 8.0
    termination_margin: float = 0.25
    max_entries: int = 8
    # Pose quantisation step for view keys (0 disables).  When > 0, the key
    # uses the pose rounded to this step, so a lookup from a *nearby* pose
    # (tracking drift across windows) lands on the existing entry and is
    # served through the toleranced stale-geometry tier — the pose-induced
    # screen drift is added to the entry's staleness bound, and cross-pose
    # reuse never reports the exact tiers.  Requires ``tolerance_px > 0``.
    pose_quantum: float = 0.0

    def __post_init__(self) -> None:
        if self.tolerance_px < 0:
            raise ValueError(f"tolerance_px must be >= 0, got {self.tolerance_px}")
        if self.pose_quantum < 0:
            raise ValueError(f"pose_quantum must be >= 0, got {self.pose_quantum}")
        if self.pose_quantum > 0 and self.tolerance_px == 0:
            raise ValueError(
                "pose_quantum > 0 requires a non-zero tolerance_px: cross-pose "
                "reuse is served through the toleranced stale-geometry tier, "
                "which tolerance_px=0 disables — raise tolerance_px or set "
                "pose_quantum=0"
            )
        # A margin below 1 would raise the keep threshold above ALPHA_CUTOFF
        # and silently drop fragments that DO contribute (alpha drops are not
        # verified at render time the way truncation is).
        if self.refine_margin != 0 and self.refine_margin < 1:
            raise ValueError(
                "refine_margin must be 0 (disabled) or >= 1 (cutoff headroom), "
                f"got {self.refine_margin}"
            )
        if self.termination_margin < 0:
            raise ValueError(
                f"termination_margin must be >= 0, got {self.termination_margin}"
            )
        if self.max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {self.max_entries}")


@dataclass
class CacheStats:
    """Hit/miss accounting of one cache (consumed by profiling/benchmarks)."""

    hits: int = 0
    refreshes: int = 0
    incremental: int = 0
    misses: int = 0
    evictions: int = 0
    budget_evictions: int = 0  # entries evicted to satisfy a byte budget
    truncation_fallbacks: int = 0  # capped renders that re-ran dense

    def count(self, status: str) -> None:
        if status == "hit":
            self.hits += 1
        elif status == "refresh":
            self.refreshes += 1
        elif status == "incremental":
            self.incremental += 1
        elif status == "miss":
            self.misses += 1
        else:
            raise ValueError(f"unknown cache status {status!r}")

    @property
    def lookups(self) -> int:
        return self.hits + self.refreshes + self.incremental + self.misses

    @property
    def reuse_fraction(self) -> float:
        """Fraction of lookups that skipped the Step 2 rebuild."""
        if self.lookups == 0:
            return 0.0
        return (self.hits + self.refreshes + self.incremental) / self.lookups

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "refreshes": self.refreshes,
            "incremental": self.incremental,
            "misses": self.misses,
            "evictions": self.evictions,
            "budget_evictions": self.budget_evictions,
            "truncation_fallbacks": self.truncation_fallbacks,
            "reuse_fraction": self.reuse_fraction,
        }


class CacheClock:
    """A shared recency counter several caches can tick together.

    Per-cache ``last_used`` stamps are only comparable across caches when
    they come from one monotonic source; the render service installs one
    ``CacheClock`` into every session's cache (``GeometryCache.set_clock``)
    so the global cross-session LRU can compare entries from different
    tenants.
    """

    def __init__(self, value: int = 0):
        self.value = value

    def tick(self) -> int:
        self.value += 1
        return self.value


def view_key(
    camera: Camera,
    pose_cw: SE3,
    tile_size: int,
    subtile_size: int,
    active_only: bool,
    pose_quantum: float = 0.0,
) -> tuple:
    """Cache key of one view; shared with the sharded parent-side mirror.

    With ``pose_quantum > 0`` the pose enters the key as integer buckets
    (``round(value / quantum)``), so any two poses inside the same bucket —
    e.g. consecutive tracking estimates of one keyframe across windows — map
    to the same key and the lookup lands on the existing entry, which
    classification then serves through the toleranced stale-geometry tier.
    """
    if pose_quantum > 0.0:
        rotation = np.round(pose_cw.rotation / pose_quantum).astype(np.int64).tobytes()
        translation = np.round(pose_cw.translation / pose_quantum).astype(np.int64).tobytes()
    else:
        rotation = pose_cw.rotation.tobytes()
        translation = pose_cw.translation.tobytes()
    return (
        camera.width,
        camera.height,
        float(camera.fx),
        float(camera.fy),
        float(camera.cx),
        float(camera.cy),
        rotation,
        translation,
        int(tile_size),
        int(subtile_size),
        bool(active_only),
    )


@dataclass
class _CacheEntry:
    """Step 1-2 products of one view at one cloud epoch."""

    key: tuple
    cloud_uid: int
    structure_epoch: int
    # Epoch and cumulative movement bounds at *build* time: staleness of the
    # geometry is always measured against these, not against later splices.
    built_epoch: int
    built_position_delta: float
    built_log_scale_delta: float
    built_opacity_delta: float
    # Screen-space conversion factors captured at build time.
    min_depth: float
    max_radius: float
    px_per_unit: float
    # Exact pose the geometry was built at (the key may be pose-quantised)
    # and the largest camera-frame point norm, which converts a rotation
    # delta into a worst-case point displacement for cross-pose reuse.
    build_rotation: np.ndarray
    build_translation: np.ndarray
    max_cam_norm: float
    projected: ProjectedGaussians
    intersections: TileIntersections
    fragments: FlatFragments
    # Epoch the appearance (colours/opacities) of ``projected`` reflects, so
    # repeated lookups at one epoch splice at most once.
    current_epoch: int = 0
    # Refined fragment schedule measured from the last render of this entry:
    # contributing-pair tile lists, the tiles whose lists were additionally
    # truncated at their termination depth (those need per-render
    # verification), and the cloud's cumulative opacity movement at
    # measurement time (a later opacity swing past the refine margin's
    # headroom voids the lists).
    refined: FlatFragments | None = field(default=None, repr=False)
    capped_tile_ids: frozenset[int] = frozenset()
    refined_opacity_delta: float = 0.0
    last_used: int = 0

    @property
    def n_fragments(self) -> int:
        return self.fragments.n_fragments


@dataclass(frozen=True)
class EntryMeta:
    """Classification-relevant metadata of one cache entry.

    Everything :func:`classify_reuse` reads, and nothing heavy — shard
    workers report one of these per built entry so the parent can mirror
    worker-cache classification (predicting which views of the next batch
    will miss and therefore need the shared preprocessing payload) without
    holding the entries themselves.
    """

    cloud_uid: int
    structure_epoch: int
    built_epoch: int
    built_position_delta: float
    built_log_scale_delta: float
    built_opacity_delta: float
    min_depth: float
    max_radius: float
    px_per_unit: float
    build_rotation: np.ndarray
    build_translation: np.ndarray
    max_cam_norm: float


def entry_meta(entry: "_CacheEntry") -> EntryMeta:
    """Extract the classification metadata of a cache entry."""
    return EntryMeta(
        cloud_uid=entry.cloud_uid,
        structure_epoch=entry.structure_epoch,
        built_epoch=entry.built_epoch,
        built_position_delta=entry.built_position_delta,
        built_log_scale_delta=entry.built_log_scale_delta,
        built_opacity_delta=entry.built_opacity_delta,
        min_depth=entry.min_depth,
        max_radius=entry.max_radius,
        px_per_unit=entry.px_per_unit,
        build_rotation=entry.build_rotation,
        build_translation=entry.build_translation,
        max_cam_norm=entry.max_cam_norm,
    )


def pose_drift(entry, pose_cw: SE3) -> float:
    """Worst-case camera-frame point displacement (world units) between the
    entry's build pose and ``pose_cw``.

    For relative rotation ``Q = R' R^T`` with angle ``theta`` and relative
    translation ``dt = t' - Q t``, a point at camera-frame distance ``r``
    moves by at most ``|dt| + 2 sin(theta/2) r``; the entry's largest build
    distance bounds ``r``.  Exactly equal poses return 0.0, keeping the
    bitwise tiers reachable only for same-pose lookups.
    """
    rotation = entry.build_rotation
    translation = entry.build_translation
    if np.array_equal(rotation, pose_cw.rotation) and np.array_equal(
        translation, pose_cw.translation
    ):
        return 0.0
    relative = pose_cw.rotation @ rotation.T
    cos_theta = float(np.clip((np.trace(relative) - 1.0) / 2.0, -1.0, 1.0))
    half_sine = float(np.sqrt(max(0.0, (1.0 - cos_theta) / 2.0)))
    delta_t = pose_cw.translation - relative @ translation
    return float(np.linalg.norm(delta_t)) + 2.0 * half_sine * entry.max_cam_norm


def screen_drift(
    entry, moved_position: float, moved_log_scale: float, pose_moved: float = 0.0
) -> float:
    """Conservative screen-space bound (pixels) on the entry's staleness.

    A position shift of ``d`` world units moves a splat centre by at most
    ``d * focal / depth`` pixels; the nearest cached depth (shrunk by the
    shift itself, since points may have moved toward the camera) gives the
    worst case.  A log-scale shift of ``s`` grows every splat radius by at
    most a factor ``e^s``.  ``pose_moved`` (camera motion expressed as an
    equivalent point displacement, see :func:`pose_drift`) adds to the
    position shift.
    """
    if (
        not np.isfinite(moved_position)
        or not np.isfinite(moved_log_scale)
        or not np.isfinite(pose_moved)
    ):
        return float("inf")
    total_shift = moved_position + pose_moved
    depth = entry.min_depth - total_shift
    if depth <= 1e-3:
        return float("inf")
    shift = total_shift * entry.px_per_unit / depth
    growth = entry.max_radius * float(np.expm1(moved_log_scale))
    return shift + growth


def classify_reuse(config: GeomCacheConfig, entry, cloud, pose_cw: SE3) -> str:
    """Classify one lookup against an entry (or :class:`EntryMeta` mirror).

    ``entry`` is duck-typed over the :class:`EntryMeta` fields and ``cloud``
    over the mutation-epoch attributes of :class:`GaussianCloud`, so the
    sharded parent can run the *same* decision procedure over its metadata
    mirror that workers run over their resident entries.  A lookup whose pose
    differs from the entry's build pose (possible only under pose-quantised
    keys) is capped at the ``incremental`` tier: the cached geometry belongs
    to another pose, so the exact tiers are unreachable by construction.
    """
    if (
        entry is None
        or entry.cloud_uid != cloud.uid
        or entry.structure_epoch != cloud.structure_epoch
        # Direct array edits (bump_epoch) carry no movement bound, so an
        # entry predating one cannot be trusted for any reuse tier.
        or entry.built_epoch < cloud.unbounded_epoch
    ):
        return "miss"
    pose_moved = pose_drift(entry, pose_cw)
    moved_position = cloud.cum_position_delta - entry.built_position_delta
    moved_log_scale = cloud.cum_log_scale_delta - entry.built_log_scale_delta
    if pose_moved == 0.0:
        if entry.built_epoch == cloud.epoch:
            return "hit"
        if moved_position == 0.0 and moved_log_scale == 0.0:
            return "refresh"
    tolerance = config.tolerance_px
    if tolerance <= 0.0:
        return "miss"
    if screen_drift(entry, moved_position, moved_log_scale, pose_moved) <= tolerance:
        return "incremental"
    return "miss"


@dataclass
class _ViewPlan:
    """Outcome of planning one view's render against the cache."""

    key: tuple
    status: str  # "hit" | "refresh" | "incremental" | "miss"
    entry: _CacheEntry | None  # None until a miss is built
    opacity_delta: float = 0.0  # cloud.cum_opacity_delta at plan time

    @property
    def fragments_used(self) -> FlatFragments:
        if self.entry.refined is not None and self.status != "miss":
            return self.entry.refined
        return self.entry.fragments


class GeometryCache:
    """Memoises the Step 1-2 pipeline per view with epoch-based invalidation."""

    def __init__(self, config: GeomCacheConfig | None = None):
        self.config = config or GeomCacheConfig()
        self.stats = CacheStats()
        self._entries: dict[tuple, _CacheEntry] = {}
        self._arena: FlatArena | None = None
        self._clock = 0
        self._shared_clock: CacheClock | None = None

    # -- public API ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def set_clock(self, clock: CacheClock) -> None:
        """Stamp recency from a shared :class:`CacheClock` from now on.

        The shared counter is advanced past this cache's private clock first,
        so entries touched before the hand-over stay older than everything
        touched after it — on this cache and on every other cache sharing the
        clock.
        """
        clock.value = max(clock.value, self._clock)
        self._shared_clock = clock

    def clear(self) -> None:
        """Drop every cached entry (the arena's high-water mark is kept)."""
        self._entries.clear()

    def entry_keys(self) -> set[tuple]:
        """The view keys currently resident (shard workers diff these across
        a batch to report LRU evictions back to the parent's mirror)."""
        return set(self._entries)

    def ensure_arena(self, n_fragments: int) -> FlatArena:
        """Return the shared grow-only arena, grown to at least ``n_fragments``."""
        self._arena = ensure_flat_arena(self._arena, n_fragments)
        return self._arena

    def render_single(
        self,
        cloud: GaussianCloud,
        camera: Camera,
        pose_cw: SE3,
        background: np.ndarray | None = None,
        tile_size: int = 16,
        subtile_size: int = 4,
        active_only: bool = True,
    ) -> RenderResult:
        """One cached flat render; the entry point used by ``rasterize_flat``."""
        plan = self.plan_view(cloud, camera, pose_cw, tile_size, subtile_size, active_only)
        if plan.status == "miss":
            self.build_view(plan, cloud, camera, pose_cw, tile_size, subtile_size, active_only)
        arena = self.ensure_arena(plan.fragments_used.n_fragments)
        return self.render_view(plan, background, arena, 0)

    def plan_view(
        self,
        cloud: GaussianCloud,
        camera: Camera,
        pose_cw: SE3,
        tile_size: int,
        subtile_size: int,
        active_only: bool,
    ) -> _ViewPlan:
        """Classify one view's lookup and splice fresh appearance on reuse.

        Returns a plan whose ``status`` is ``"miss"`` (caller must invoke
        :meth:`build_view`, optionally donating shared preprocessing) or one
        of the reuse tiers, in which case ``entry`` is ready to render.
        """
        key = view_key(
            camera, pose_cw, tile_size, subtile_size, active_only,
            pose_quantum=self.config.pose_quantum,
        )
        entry = self._entries.get(key)
        status = classify_reuse(self.config, entry, cloud, pose_cw)
        if status == "miss":
            return _ViewPlan(
                key=key, status=status, entry=None, opacity_delta=cloud.cum_opacity_delta
            )
        self._touch(entry)
        if entry.current_epoch != cloud.epoch:
            self._splice_appearance(entry, cloud)
        if entry.refined is not None and self.config.refine_margin > 0:
            # Refinement masks were measured under older opacities; once the
            # cumulative logit movement exceeds the margin's headroom
            # (sigmoid(x + d) <= sigmoid(x) * e^d), a dropped pair could have
            # crossed the cutoff, so fall back to the full tile lists.
            headroom = float(np.log(max(self.config.refine_margin, 1.0)))
            if cloud.cum_opacity_delta - entry.refined_opacity_delta > headroom:
                entry.refined = None
                entry.capped_tile_ids = frozenset()
        return _ViewPlan(
            key=key, status=status, entry=entry, opacity_delta=cloud.cum_opacity_delta
        )

    def build_view(
        self,
        plan: _ViewPlan,
        cloud: GaussianCloud,
        camera: Camera,
        pose_cw: SE3,
        tile_size: int,
        subtile_size: int,
        active_only: bool,
        shared: SharedGaussianData | None = None,
    ) -> _CacheEntry:
        """Run the full Step 1-2 pipeline for a missed view and cache it."""
        projected = project_gaussians(
            cloud, camera, pose_cw, active_only=active_only, shared=shared
        )
        grid = TileGrid(camera.width, camera.height, tile_size, subtile_size)
        intersections = build_tile_lists(projected, grid)
        fragments = build_flat_fragments(intersections)
        entry = _CacheEntry(
            key=plan.key,
            cloud_uid=cloud.uid,
            structure_epoch=cloud.structure_epoch,
            built_epoch=cloud.epoch,
            built_position_delta=cloud.cum_position_delta,
            built_log_scale_delta=cloud.cum_log_scale_delta,
            built_opacity_delta=cloud.cum_opacity_delta,
            min_depth=float(projected.depths.min()) if projected.n_visible else float("inf"),
            max_radius=float(projected.radii.max()) if projected.n_visible else 0.0,
            px_per_unit=float(max(camera.fx, camera.fy)),
            build_rotation=pose_cw.rotation.copy(),
            build_translation=pose_cw.translation.copy(),
            max_cam_norm=(
                float(np.linalg.norm(projected.points_cam, axis=1).max())
                if projected.n_visible
                else 0.0
            ),
            projected=projected,
            intersections=intersections,
            fragments=fragments,
            current_epoch=cloud.epoch,
        )
        self._entries[plan.key] = entry
        self._touch(entry)
        self._evict()
        plan.entry = entry
        return entry

    def render_view(
        self,
        plan: _ViewPlan,
        background: np.ndarray | None,
        arena: FlatArena,
        base: int,
    ) -> RenderResult:
        """Render one planned view into ``arena[base:]`` with verified reuse.

        Runs the flat forward on the entry's (possibly refined/truncated)
        fragment schedule; if the truncation verification fails — some pixel
        of a capped tile did not terminate within the cap — the view is
        re-rendered densely into a private arena, so the returned result is
        always exact up to the reuse tier's own contract.  Records cache
        accounting and refreshes the fragment schedule for the next render.
        """
        entry = plan.entry
        fragments = plan.fragments_used
        result = rasterize_flat_into(
            entry.projected, entry.intersections, fragments, background, arena, base
        )
        if self._under_terminated(entry, fragments, result):
            self.stats.truncation_fallbacks += 1
            fragments = entry.fragments
            result = rasterize_flat_into(
                entry.projected,
                entry.intersections,
                fragments,
                background,
                ensure_flat_arena(None, fragments.n_fragments),
                0,
            )
        result.cache_status = plan.status
        self.stats.count(plan.status)
        if self.config.refine_margin > 0 or self.config.termination_margin > 0:
            self._refine(entry, fragments, result)
            entry.refined_opacity_delta = plan.opacity_delta
        return result

    # -- internals ----------------------------------------------------------
    def _splice_appearance(self, entry: _CacheEntry, cloud: GaussianCloud) -> None:
        """Adopt the cloud's current colours/opacities onto the cached entry.

        Colours and opacities do not feed projection geometry, tile
        assignment or depth order, so gathering them fresh is exactly what a
        full rebuild would produce for those fields.
        """
        rows = entry.projected.indices
        projected = replace(
            entry.projected,
            colors=cloud.colors[rows],
            opacities=cloud.opacities(rows=rows),
        )
        entry.projected = projected
        entry.intersections = TileIntersections(
            grid=entry.intersections.grid,
            per_tile=entry.intersections.per_tile,
            projected=projected,
        )
        entry.current_epoch = cloud.epoch

    def _under_terminated(
        self, entry: _CacheEntry, rendered: FlatFragments, result: RenderResult
    ) -> bool:
        """True when a truncated tile left some pixel's compositing unfinished.

        Only tiles whose lists were capped at a termination depth need the
        check (contributing-pair drops have zero alpha and cannot absorb
        transmittance); for those, any pixel whose transmittance after the
        last rendered fragment is still at or above the termination threshold
        would have processed more fragments in a dense render.
        """
        if not entry.capped_tile_ids or rendered is entry.fragments:
            return False
        for cache in result.tile_caches:
            if cache.tile_id not in entry.capped_tile_ids:
                continue
            trans_end = cache.transmittance_before[:, -1] * (1.0 - cache.alphas[:, -1])
            if np.any(trans_end >= TRANSMITTANCE_EPS):
                return True
        return False

    def _refine(
        self, entry: _CacheEntry, rendered: FlatFragments, result: RenderResult
    ) -> None:
        """Rebuild the entry's fragment schedule from the render's buffers.

        Two reductions over the per-tile caches (the software analogue of
        reading the R&B Buffer back):

        * a pair whose best per-pixel raw alpha stays below ``ALPHA_CUTOFF /
          refine_margin`` composites to exactly zero everywhere in the tile,
          so dropping it leaves the output unchanged at this epoch, and the
          margin's headroom covers the drift the tolerance admits before the
          next full rebuild;
        * fragments deeper than the tile's termination depth (the deepest
          per-pixel processed count) were visited by no pixel; the kept list
          is capped there plus ``termination_margin`` headroom, and capped
          tiles are recorded for the per-render verification.

        Schedules measured on an already-refined render only refine further;
        a miss resets the schedule to the full lists.
        """
        refine_margin = self.config.refine_margin
        termination_margin = self.config.termination_margin
        cutoff = ALPHA_CUTOFF / refine_margin if refine_margin > 0 else 0.0
        opacities = result.projected.opacities
        keep_rows: list[np.ndarray] = []
        keep_lin: list[np.ndarray] = []
        slices: list[tuple[int, int, int]] = []
        capped: set[int] = set()
        offset = 0
        max_per_pixel = 0
        # ``result.tile_caches`` aligns one-to-one with the non-empty tiles of
        # the fragment list the render actually used.
        for cache, pixel_lin in zip(result.tile_caches, rendered.tile_pixel_lin):
            rows = cache.rows
            if refine_margin > 0:
                best_alpha = cache.gauss_values.max(axis=0) * opacities[rows]
                keep = best_alpha >= cutoff
                kept = rows[keep]
            else:
                keep = None
                kept = rows
            if termination_margin > 0 and kept.size:
                depth = int(cache.processed.sum(axis=1).max())
                kept_in_prefix = (
                    int(np.count_nonzero(keep[:depth])) if keep is not None else depth
                )
                cap = kept_in_prefix + max(4, int(np.ceil(termination_margin * kept_in_prefix)))
                if cap < kept.shape[0]:
                    kept = kept[:cap]
                    capped.add(cache.tile_id)
            if kept.size == 0:
                continue
            n_frag = pixel_lin.shape[0] * kept.shape[0]
            slices.append((cache.tile_id, offset, offset + n_frag))
            keep_rows.append(kept)
            keep_lin.append(pixel_lin)
            offset += n_frag
            max_per_pixel = max(max_per_pixel, kept.shape[0])
        entry.refined = FlatFragments(
            width=entry.fragments.width,
            tile_slices=slices,
            tile_rows=keep_rows,
            tile_pixel_lin=keep_lin,
            n_fragments=offset,
            max_per_pixel=max_per_pixel,
        )
        entry.capped_tile_ids = frozenset(capped)

    def _touch(self, entry: _CacheEntry) -> None:
        if self._shared_clock is not None:
            self._clock = self._shared_clock.tick()
        else:
            self._clock += 1
        entry.last_used = self._clock

    def _evict(self) -> None:
        while len(self._entries) > max(1, self.config.max_entries):
            oldest = min(self._entries.values(), key=lambda entry: entry.last_used)
            del self._entries[oldest.key]
            self.stats.evictions += 1

    # -- byte accounting / budgeted eviction --------------------------------
    def total_bytes(self) -> int:
        """Resident bytes of every cached entry (shared buffers counted once)."""
        seen: set[int] = set()
        return sum(
            _entry_nbytes(entry, seen) for entry in self._entries.values()
        )

    def oldest_entry(self) -> "tuple[int, tuple] | None":
        """``(last_used, key)`` of the least-recently-used entry, or ``None``.

        ``last_used`` stamps are comparable across caches sharing one
        :class:`CacheClock`; the render service uses this to pick the global
        LRU victim among all open sessions.
        """
        if not self._entries:
            return None
        oldest = min(self._entries.values(), key=lambda entry: entry.last_used)
        return oldest.last_used, oldest.key

    def evict_lru(self) -> "tuple | None":
        """Evict the least-recently-used entry for a byte budget; its key.

        Unlike capacity eviction this may empty the cache entirely.  Work
        units already planned against the evicted entry stay valid — they
        hold a direct reference — and the next lookup of the evicted view
        simply rebuilds as a miss, so budget pressure can never corrupt an
        in-flight batch, only cost a rebuild.
        """
        if not self._entries:
            return None
        oldest = min(self._entries.values(), key=lambda entry: entry.last_used)
        del self._entries[oldest.key]
        self.stats.evictions += 1
        self.stats.budget_evictions += 1
        return oldest.key


def _entry_nbytes(obj, seen: set[int]) -> int:
    """Recursively sum ndarray bytes under ``obj``, deduplicating buffers.

    Cached products alias each other aggressively (refined fragment
    schedules share the builder's arrays, ``intersections.projected`` *is*
    the entry's ``projected``), so every array is resolved to its owning
    base buffer and each buffer is counted once per ``seen`` set — pass one
    set across all entries of a cache for resident-set semantics.
    """
    import dataclasses as _dc

    if obj is None or isinstance(obj, (bool, int, float, str, bytes, frozenset)):
        return 0
    if isinstance(obj, np.ndarray):
        root = obj
        while isinstance(root.base, np.ndarray):
            root = root.base
        if id(root) in seen:
            return 0
        seen.add(id(root))
        return int(root.nbytes)
    if isinstance(obj, (list, tuple)):
        return sum(_entry_nbytes(item, seen) for item in obj)
    if isinstance(obj, dict):
        return sum(_entry_nbytes(item, seen) for item in obj.values())
    if _dc.is_dataclass(obj) and not isinstance(obj, type):
        if id(obj) in seen:
            return 0
        seen.add(id(obj))
        return sum(
            _entry_nbytes(getattr(obj, field.name), seen)
            for field in _dc.fields(obj)
        )
    return 0
