"""Batched multi-view rasterization: one arena, shared preprocessing, fused BP.

The SLAM mapping stage optimises the Gaussian map against a *window* of
keyframes (the paper's joint mapping optimisation).  Rendering that window one
view at a time repeats all view-independent work per view: covariance
assembly, the opacity sigmoid, colour (SH DC) evaluation, output allocation,
and — in the backward pass — the whole Step 5 einsum chain and one optimiser
scatter per view.

:func:`rasterize_batch` renders ``V`` views of one cloud while paying those
costs once:

* the view-independent per-Gaussian preprocessing is computed a single time
  (:func:`repro.gaussians.projection.shared_preprocess`) and reused by every
  view's projection;
* all views' fragments are laid out in **one flat arena**
  (:class:`repro.gaussians.fast_raster.FlatArena`): each view rasterizes into
  its own base-offset slice, so the multi-view forward pass shares one set of
  allocations and stays cache-compact;
* per-view wall-clock and the shared-preprocess time are recorded on the
  result, which is what the profiling layer and the hardware model consume to
  amortise Step 1 across the batch.

The batch pipeline is an explicit **plan/execute** split:

* :func:`plan_batch_views` runs everything that must see the whole batch at
  once — shared per-Gaussian preprocessing, per-view Step 1-2 (projection,
  tile assignment, flat fragment build; geometry-cache lookups when a cache
  is threaded through) and the arena reservation — and emits one
  self-contained :class:`ViewWorkUnit` per view;
* :func:`execute_view` rasterizes a single work unit, independently of every
  other unit, and :func:`execute_plan` runs all units serially and stitches
  the per-view results back into a :class:`BatchRenderResult` in view order.

Uncached work units are picklable and carry everything a worker process needs
(projected Gaussians, tile layout, background, arena slice), which is the
seam the ``sharded`` backend (:mod:`repro.engine.sharded`) executes in
parallel across a worker pool.  The flat backend executes the *same* plan
serially, so both backends are behaviour-preserving by construction.

:func:`render_backward_batch` runs the per-view Step 4 Rendering BP (tile
caches are per-view by construction) and then folds every view's screen-space
gradients into **one** fused Step 5 pass
(:func:`repro.gaussians.backward.preprocess_backward_batch`), accumulating
cloud gradients across views in a single scatter.

Per-view outputs are numerically identical to sequential single-view flat
renders; the fused backward matches the per-view sum to floating-point
regrouping error.  The differential harness in :mod:`repro.testing` pins both
(batch-of-1 against a single view, and a 3-view batch against three
sequential calls).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.gaussians.backward import (
    CloudGradients,
    GradientTrace,
    ScreenSpaceGradients,
    preprocess_backward_batch,
    rasterize_backward,
)
from repro.gaussians.camera import Camera
from repro.gaussians.fast_raster import (
    FlatArena,
    build_flat_fragments,
    ensure_flat_arena,
    rasterize_flat_into,
)
from repro.gaussians.gaussian_model import GaussianCloud
from repro.gaussians.projection import (
    SharedGaussianData,
    project_gaussians,
    shared_preprocess,
)
from repro.gaussians.rasterizer import RenderResult
from repro.gaussians.se3 import SE3
from repro.gaussians.sorting import build_tile_lists
from repro.gaussians.tiling import TileGrid

if TYPE_CHECKING:
    from repro.gaussians.geom_cache import GeometryCache


@dataclass
class ShardAttribution:
    """Per-shard accounting of one sharded batch render.

    Present on :class:`BatchRenderResult` only when the batch was actually
    executed across worker processes; the profiling layer threads it into the
    per-view :class:`~repro.slam.records.WorkloadSnapshot` fields
    (``shard_workers`` / ``shard_worker_id`` / ``shard_seconds`` /
    ``shard_stitch_seconds``) consumed by ``batch_amortization_report`` and
    the hardware model.
    """

    n_workers: int  # worker processes that executed this batch
    worker_ids: list[int]  # per view: the worker that rasterized it
    view_shard_seconds: list[float]  # per view: wall-clock inside its worker
    worker_seconds: dict[int, float]  # per worker: total wall-clock of its shard
    # Parent-side shared-memory pack + message construction overhead.  The
    # pipe sends themselves overlap with worker execution and are part of
    # shard_wall_seconds (the send->last-reply critical path).
    dispatch_seconds: float
    stitch_seconds: float  # parent-side gather + result assembly overhead
    shard_wall_seconds: float = 0.0  # wall-clock of the parallel phase (critical path)
    # Where per-view Step 1-2 planning ran: "parent" (pre-planned units
    # shipped to workers) or "worker" (workers project/tile/cache themselves).
    plan_site: str = "parent"
    # Per view: worker-side Step 1-2 plan + cache lookup wall-clock; empty
    # when planning ran in the parent (plan time then lives in view_seconds).
    view_plan_seconds: list[float] = field(default_factory=list)
    # -- fault accounting (all empty/zero on a healthy run) ------------------
    # Chronological fault log: dicts with at least ``event`` (died | timeout |
    # send-failed | poisoned | slow | worker-error | respawn | escalated |
    # stale-handle), ``worker``, ``phase`` ("render" | "backward") and
    # ``views``.  The backward pass appends to this same list, so snapshots
    # built after a mapping iteration see both phases.
    fault_events: list = field(default_factory=list)
    fault_retries: int = 0  # redispatch rounds beyond the first
    fault_quarantined_workers: list[int] = field(default_factory=list)
    fault_respawned_workers: list[int] = field(default_factory=list)
    # Views that fell back to serial flat execution in the parent (their
    # worker_ids entry is -1 and they carry no worker handle).
    escalated_views: list[int] = field(default_factory=list)
    # -- multi-tenant attribution (render service) ---------------------------
    # The owning service session and its per-view scheduler timings: how long
    # each view waited in the session queue before dispatch and how long its
    # dispatch round took.  Empty / "" outside repro.service.RenderService.
    session_id: str = ""
    view_queue_wait_seconds: list[float] = field(default_factory=list)
    view_service_seconds: list[float] = field(default_factory=list)


@dataclass
class BatchRenderResult:
    """Per-view renders plus the shared state and timings of one batch."""

    views: list[RenderResult]
    # View-independent Step 1 data; None when a geometry cache served every
    # view from its entries (nothing needed rebuilding).
    shared: SharedGaussianData | None
    # The parent-process fragment arena the views rasterized into.  ``None``
    # for sharded batches: each worker owns the arena its views' tile caches
    # alias, so there is nothing for the caller to recycle.
    arena: FlatArena | None
    shared_seconds: float  # view-independent preprocessing wall-clock
    view_seconds: list[float]  # per-view projection + sort + raster wall-clock
    # Per-shard attribution of a multi-process batch; None when the batch was
    # executed serially in the parent process.
    sharding: ShardAttribution | None = None

    @property
    def n_views(self) -> int:
        return len(self.views)

    @property
    def n_fragments_total(self) -> int:
        """Total fragments across all views (the batch rendering workload)."""
        return sum(view.n_fragments for view in self.views)

    def per_view_fragments(self) -> list[int]:
        return [view.n_fragments for view in self.views]

    def timings(self) -> dict[str, float | list[float]]:
        """Wall-clock decomposition consumed by profiling and benchmarks.

        ``total_s`` sums per-view work; for a sharded batch that is CPU time
        across workers, not wall-clock, and the extra ``dispatch_s`` /
        ``stitch_s`` / ``n_shard_workers`` keys attribute the parent-side
        orchestration overhead.
        """
        timings: dict[str, float | list[float]] = {
            "shared_s": self.shared_seconds,
            "views_s": list(self.view_seconds),
            "total_s": self.shared_seconds + sum(self.view_seconds),
        }
        if self.sharding is not None:
            timings["dispatch_s"] = self.sharding.dispatch_seconds
            timings["stitch_s"] = self.sharding.stitch_seconds
            timings["n_shard_workers"] = float(self.sharding.n_workers)
        return timings


@dataclass
class BatchGradients:
    """Fused cloud gradients of one batched backward pass."""

    cloud: CloudGradients  # summed over views; trace is the merged trace
    screen: list[ScreenSpaceGradients]  # per-view Step 4 outputs
    per_view_pose_twists: np.ndarray  # (V, 6); zeros unless pose gradients requested

    @property
    def per_view_traces(self) -> list[GradientTrace]:
        """Per-view gradient traces (what per-view workload snapshots record)."""
        return [screen.trace for screen in self.screen]


def _normalise_backgrounds(
    backgrounds: np.ndarray | Sequence[np.ndarray | None] | None, n_views: int
) -> list[np.ndarray | None]:
    if backgrounds is None:
        return [None] * n_views
    if isinstance(backgrounds, (list, tuple)):
        # A 3-element sequence of scalars is one shared colour — the same
        # thing ``rasterize(background=(r, g, b))`` accepts — not three
        # per-view entries (per-view entries are (3,) colours or None).
        if len(backgrounds) == 3 and all(
            entry is not None and np.ndim(entry) == 0 for entry in backgrounds
        ):
            return [np.asarray(backgrounds, dtype=np.float64)] * n_views
        if len(backgrounds) != n_views:
            raise ValueError(
                f"got {len(backgrounds)} backgrounds for {n_views} views; "
                "pass one per view, a single shared background, or None"
            )
        return list(backgrounds)
    shared_background = np.asarray(backgrounds, dtype=np.float64)
    if shared_background.shape != (3,):
        raise ValueError(
            f"shared background must have shape (3,), got {shared_background.shape}"
        )
    return [shared_background] * n_views


@dataclass(frozen=True)
class SpeculationKey:
    """Validity signature of a speculatively planned batch.

    A speculative plan (the ``async`` backend rendering window *k+1* while the
    parent finishes window *k*) may only be consumed if the batch it was built
    for is still *bitwise* the batch being requested.  The key captures every
    input that influences the rendered pixels: the cloud's identity and full
    mutation-epoch state (the same scalars the sharded workers key their
    resident caches by), per-view camera geometry, poses and backgrounds, the
    tiling knobs, and the cache identity.  The arena is deliberately excluded
    — it is an allocation detail, and double-buffering swaps it by design.

    Any cloud mutation between speculation and consumption (optimiser step,
    densify/prune, ``notify_removed``) bumps an epoch or accumulates a delta,
    the keys stop matching, and the stale plan is discarded — never stitched.
    """

    cloud_uid: int
    epoch: int
    structure_epoch: int
    unbounded_epoch: int
    cum_position_delta: float
    cum_log_scale_delta: float
    cum_opacity_delta: float
    views: tuple
    tile_size: int
    subtile_size: int
    active_only: bool
    cache_id: int | None

    @staticmethod
    def from_batch_inputs(
        cloud: GaussianCloud,
        cameras: Sequence[Camera],
        poses_cw: Sequence[SE3],
        backgrounds=None,
        *,
        tile_size: int = 16,
        subtile_size: int = 4,
        active_only: bool = True,
        cache=None,
    ) -> "SpeculationKey":
        backgrounds_per_view = _normalise_backgrounds(backgrounds, len(cameras))
        views = tuple(
            (
                (
                    int(camera.width),
                    int(camera.height),
                    float(camera.fx),
                    float(camera.fy),
                    float(camera.cx),
                    float(camera.cy),
                ),
                np.ascontiguousarray(pose.rotation, dtype=np.float64).tobytes()
                + np.ascontiguousarray(pose.translation, dtype=np.float64).tobytes(),
                b""
                if background is None
                else np.ascontiguousarray(background, dtype=np.float64).tobytes(),
            )
            for camera, pose, background in zip(cameras, poses_cw, backgrounds_per_view)
        )
        return SpeculationKey(
            cloud_uid=cloud.uid,
            epoch=cloud.epoch,
            structure_epoch=cloud.structure_epoch,
            unbounded_epoch=cloud.unbounded_epoch,
            cum_position_delta=float(cloud.cum_position_delta),
            cum_log_scale_delta=float(cloud.cum_log_scale_delta),
            cum_opacity_delta=float(cloud.cum_opacity_delta),
            views=views,
            tile_size=int(tile_size),
            subtile_size=int(subtile_size),
            active_only=bool(active_only),
            cache_id=None if cache is None else id(cache),
        )


@dataclass
class SpeculativePlanHandle:
    """Observable lifecycle of one speculative batch plan.

    ``pending`` (in flight on the pool) -> exactly one of ``consumed`` (the
    matching request arrived and adopted the result), ``discarded`` (inputs
    changed before consumption — epoch bump, different window — so the work
    was thrown away), or ``drained`` (an explicit :meth:`drain` barrier
    retired it).  Handles are bookkeeping only; they never expose the
    underlying buffers, so a discarded speculation cannot leak half-built
    state into a later batch.
    """

    key: SpeculationKey
    status: str = "pending"

    @property
    def pending(self) -> bool:
        return self.status == "pending"

    @property
    def consumed(self) -> bool:
        return self.status == "consumed"


@dataclass
class ViewWorkUnit:
    """One view's self-contained rasterization work, emitted by the planner.

    A unit carries everything :func:`execute_view` needs — the view's Step 1-2
    products, its background, tile granularity and its reserved base-offset
    slice of the batch arena — and nothing else, so units can be executed in
    any order, in any process.  Uncached units are picklable (the ``sharded``
    backend ships them to worker processes); units planned through a geometry
    cache additionally reference the parent-process cache entry via
    ``cache_plan`` and must be executed in the planning process.
    """

    index: int  # position of this view within its batch
    projected: ProjectedGaussians
    intersections: TileIntersections
    fragments: FlatFragments
    background: np.ndarray | None
    tile_size: int
    subtile_size: int
    base: int  # reserved fragment offset into the batch arena
    plan_seconds: float  # Step 1-2 wall-clock attributed to this view
    cache_plan: object | None = None  # geom_cache._ViewPlan on the cached path

    @property
    def n_fragments(self) -> int:
        return self.fragments.n_fragments


@dataclass
class RenderPlan:
    """The planned batch: shared preprocessing plus one work unit per view.

    Produced by :func:`plan_batch_views`; executed serially by
    :func:`execute_plan` (the flat backend) or in parallel by the ``sharded``
    backend, which rasterizes the same units across worker processes.
    ``cache`` is the geometry cache the units were planned against (``None``
    on the uncached path); cached plans own no arena reservation conflicts —
    the cache's shared grow-only arena supersedes any caller arena.
    """

    units: list[ViewWorkUnit]
    shared: SharedGaussianData | None
    shared_seconds: float
    total_fragments: int
    cache: "GeometryCache | None" = None

    @property
    def n_views(self) -> int:
        return len(self.units)


def plan_batch_views(
    cloud: GaussianCloud,
    cameras: Sequence[Camera],
    poses_cw: Sequence[SE3],
    backgrounds: np.ndarray | Sequence[np.ndarray | None] | None = None,
    tile_size: int = 16,
    subtile_size: int = 4,
    active_only: bool = True,
    cache: "GeometryCache | None" = None,
) -> RenderPlan:
    """Plan a batch render: shared Step 1, per-view Step 1-2, arena reservation.

    Runs the view-independent per-Gaussian preprocessing once, the per-view
    projection / tile assignment / flat-fragment build (or the geometry-cache
    lookup-and-build when ``cache`` is given), and assigns every view its
    base-offset slice of the batch arena.  The returned plan's work units are
    self-contained; rasterization itself happens in :func:`execute_view` /
    :func:`execute_plan`.
    """
    cameras = list(cameras)
    poses_cw = list(poses_cw)
    if len(cameras) != len(poses_cw):
        raise ValueError(
            f"got {len(cameras)} cameras but {len(poses_cw)} poses; one pose per view"
        )
    if not cameras:
        raise ValueError("batched rendering needs at least one view")
    backgrounds_per_view = _normalise_backgrounds(backgrounds, len(cameras))

    plan_seconds = [0.0] * len(cameras)
    if cache is not None:
        cache_plans = []
        for index, (camera, pose_cw) in enumerate(zip(cameras, poses_cw)):
            start = time.perf_counter()
            cache_plans.append(
                cache.plan_view(cloud, camera, pose_cw, tile_size, subtile_size, active_only)
            )
            plan_seconds[index] += time.perf_counter() - start

        # The view-independent Step 1 half is needed (once) only for views
        # the cache could not serve.
        shared = None
        shared_seconds = 0.0
        if any(plan.status == "miss" for plan in cache_plans):
            start = time.perf_counter()
            shared = shared_preprocess(cloud, active_only=active_only)
            shared_seconds = time.perf_counter() - start
        for index, view_plan in enumerate(cache_plans):
            if view_plan.status != "miss":
                continue
            start = time.perf_counter()
            cache.build_view(
                view_plan,
                cloud,
                cameras[index],
                poses_cw[index],
                tile_size,
                subtile_size,
                active_only,
                shared=shared,
            )
            plan_seconds[index] += time.perf_counter() - start

        units = []
        base = 0
        for index, view_plan in enumerate(cache_plans):
            fragments = view_plan.fragments_used
            units.append(
                ViewWorkUnit(
                    index=index,
                    projected=view_plan.entry.projected,
                    intersections=view_plan.entry.intersections,
                    fragments=fragments,
                    background=backgrounds_per_view[index],
                    tile_size=tile_size,
                    subtile_size=subtile_size,
                    base=base,
                    plan_seconds=plan_seconds[index],
                    cache_plan=view_plan,
                )
            )
            base += fragments.n_fragments
        return RenderPlan(
            units=units,
            shared=shared,
            shared_seconds=shared_seconds,
            total_fragments=base,
            cache=cache,
        )

    start = time.perf_counter()
    shared = shared_preprocess(cloud, active_only=active_only)
    shared_seconds = time.perf_counter() - start

    # Step 1-2 per view (projection, tiling, sorting) with the shared data,
    # and the arena reservation: each view gets a base-offset slice.
    units = []
    base = 0
    for index, (camera, pose_cw) in enumerate(zip(cameras, poses_cw)):
        start = time.perf_counter()
        projected = project_gaussians(
            cloud, camera, pose_cw, active_only=active_only, shared=shared
        )
        grid = TileGrid(camera.width, camera.height, tile_size, subtile_size)
        intersections = build_tile_lists(projected, grid)
        fragments = build_flat_fragments(intersections)
        plan_seconds[index] += time.perf_counter() - start
        units.append(
            ViewWorkUnit(
                index=index,
                projected=projected,
                intersections=intersections,
                fragments=fragments,
                background=backgrounds_per_view[index],
                tile_size=tile_size,
                subtile_size=subtile_size,
                base=base,
                plan_seconds=plan_seconds[index],
            )
        )
        base += fragments.n_fragments

    return RenderPlan(
        units=units,
        shared=shared,
        shared_seconds=shared_seconds,
        total_fragments=base,
    )


def execute_view(
    unit: ViewWorkUnit, arena: FlatArena, cache: "GeometryCache | None" = None
) -> RenderResult:
    """Rasterize one planned work unit into ``arena[unit.base:]``.

    Units are independent: they may run in any order and (uncached) in any
    process, as long as each writes its own reserved arena slice.  Cached
    units route through :meth:`GeometryCache.render_view` so refinement,
    truncation verification and hit/miss accounting happen exactly as on the
    pre-split path.
    """
    if unit.cache_plan is not None:
        if cache is None:
            raise ValueError(
                "work unit was planned against a geometry cache; pass that cache "
                "to execute it"
            )
        return cache.render_view(unit.cache_plan, unit.background, arena, unit.base)
    return rasterize_flat_into(
        unit.projected,
        unit.intersections,
        unit.fragments,
        unit.background,
        arena,
        unit.base,
    )


def execute_plan(plan: RenderPlan, arena: FlatArena | None = None) -> BatchRenderResult:
    """Execute every work unit of ``plan`` serially and stitch the batch result.

    This is the flat backend's batch path: one arena for the whole batch
    (recycled grow-only from ``arena``, or the geometry cache's shared arena
    on cached plans — a recycled arena that still fits avoids the allocation
    and its first-touch page faults entirely, and fragment counts barely move
    between the iterations of one mapping window), every unit rasterized into
    its reserved slice, results stitched in view order.
    """
    if plan.cache is not None:
        arena = plan.cache.ensure_arena(plan.total_fragments)
    else:
        arena = ensure_flat_arena(arena, plan.total_fragments)

    views: list[RenderResult] = [None] * plan.n_views  # type: ignore[list-item]
    view_seconds = [0.0] * plan.n_views
    for unit in plan.units:
        start = time.perf_counter()
        views[unit.index] = execute_view(unit, arena, cache=plan.cache)
        view_seconds[unit.index] = unit.plan_seconds + (time.perf_counter() - start)

    return BatchRenderResult(
        views=views,
        shared=plan.shared,
        arena=arena,
        shared_seconds=plan.shared_seconds,
        view_seconds=view_seconds,
    )


def rasterize_batch_views(
    cloud: GaussianCloud,
    cameras: Sequence[Camera],
    poses_cw: Sequence[SE3],
    backgrounds: np.ndarray | Sequence[np.ndarray | None] | None = None,
    tile_size: int = 16,
    subtile_size: int = 4,
    active_only: bool = True,
    arena: FlatArena | None = None,
    cache: "GeometryCache | None" = None,
) -> BatchRenderResult:
    """Render ``cloud`` from every (camera, pose) view with shared preprocessing.

    This is the flat-backend batch implementation behind
    :meth:`repro.engine.RenderEngine.render_batch` (and the deprecated
    :func:`rasterize_batch` shim): :func:`plan_batch_views` followed by the
    serial :func:`execute_plan`.  Parameters mirror the single-view render;
    ``backgrounds`` may be ``None``, one shared ``(3,)`` colour, or one entry
    per view.  Views may differ in camera intrinsics and resolution.

    ``arena`` lets iterative callers (the engine's managed batch path) recycle
    the fragment arena of the previous batch: recycling is grow-only
    (:func:`repro.gaussians.fast_raster.ensure_flat_arena`), so the
    high-water-mark buffer survives window-size changes and each view slices
    a base-offset view into it.  Reuse overwrites the storage that the
    previous batch's ``RenderResult`` caches alias, so only pass an arena
    whose batch has been fully consumed.

    ``cache`` threads a :class:`repro.gaussians.geom_cache.GeometryCache`
    through every view: Step 1-2 products are reused across calls per the
    cache's epoch/tolerance tiers, shared preprocessing runs only when at
    least one view misses, and the cache's own grow-only arena (shared with
    every other render the cache serves, across windows) supersedes the
    ``arena`` parameter.
    """
    plan = plan_batch_views(
        cloud,
        cameras,
        poses_cw,
        backgrounds=backgrounds,
        tile_size=tile_size,
        subtile_size=subtile_size,
        active_only=active_only,
        cache=cache,
    )
    return execute_plan(plan, arena=arena)


def render_backward_batch_views(
    batch: BatchRenderResult,
    cloud: GaussianCloud,
    dL_dimages: Sequence[np.ndarray],
    dL_ddepths: Sequence[np.ndarray | None] | None = None,
    compute_pose_gradient: bool = False,
) -> BatchGradients:
    """Steps 4-5 for a whole batch, with Step 5 fused across views.

    ``dL_dimages`` must hold one image-gradient per view; ``dL_ddepths`` is
    optional (``None``, or one entry per view where entries may be ``None``).
    The returned cloud gradients are the sum over views — the scheduler's one
    fused map update — while per-view pose twists stay separable for callers
    that optimise poses jointly.
    """
    dL_dimages = list(dL_dimages)
    if len(dL_dimages) != batch.n_views:
        raise ValueError(
            f"got {len(dL_dimages)} image gradients for {batch.n_views} views"
        )
    if dL_ddepths is None:
        dL_ddepths = [None] * batch.n_views
    else:
        dL_ddepths = list(dL_ddepths)
        if len(dL_ddepths) != batch.n_views:
            raise ValueError(
                f"got {len(dL_ddepths)} depth gradients for {batch.n_views} views"
            )

    screen = [
        rasterize_backward(view, dL_dimage, dL_ddepth)
        for view, dL_dimage, dL_ddepth in zip(batch.views, dL_dimages, dL_ddepths)
    ]
    cloud_grads, per_view_twists = preprocess_backward_batch(
        screen, cloud, compute_pose_gradient=compute_pose_gradient
    )
    return BatchGradients(
        cloud=cloud_grads, screen=screen, per_view_pose_twists=per_view_twists
    )


# -- deprecated shims ---------------------------------------------------------
def rasterize_batch(
    cloud: GaussianCloud,
    cameras: Sequence[Camera],
    poses_cw: Sequence[SE3],
    backgrounds: np.ndarray | Sequence[np.ndarray | None] | None = None,
    tile_size: int = 16,
    subtile_size: int = 4,
    active_only: bool = True,
    arena: FlatArena | None = None,
    cache: "GeometryCache | None" = None,
) -> BatchRenderResult:
    """Deprecated shim: batch render through the process-default engine.

    Delegates unmanaged (caller-supplied ``arena`` / ``cache`` pass through
    verbatim, a fresh arena is allocated when neither is given), so legacy
    call sites stay bit-identical.  New code should render through an
    injected :class:`repro.engine.RenderEngine` and let it own the arena.
    """
    from repro.engine import default_engine
    from repro.utils.deprecation import warn_render_shim

    warn_render_shim("rasterize_batch", "RenderEngine.render_batch")
    return default_engine().render_batch(
        cloud,
        cameras,
        poses_cw,
        backgrounds=backgrounds,
        tile_size=tile_size,
        subtile_size=subtile_size,
        active_only=active_only,
        arena=arena,
        cache=cache,
        managed=False,
    )


def render_backward_batch(
    batch: BatchRenderResult,
    cloud: GaussianCloud,
    dL_dimages: Sequence[np.ndarray],
    dL_ddepths: Sequence[np.ndarray | None] | None = None,
    compute_pose_gradient: bool = False,
) -> BatchGradients:
    """Deprecated shim: fused batch backward through the process-default engine."""
    from repro.engine import default_engine
    from repro.utils.deprecation import warn_render_shim

    warn_render_shim("render_backward_batch", "RenderEngine.backward_batch")
    return default_engine().backward_batch(
        batch,
        cloud,
        dL_dimages,
        dL_ddepths,
        compute_pose_gradient=compute_pose_gradient,
    )
