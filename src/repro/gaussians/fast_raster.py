"""Flat fragment-list fast path for Step 3 *Rendering* and Step 4 *Rendering BP*.

The reference rasterizer (:mod:`repro.gaussians.rasterizer`) materialises a
fresh dense ``(P, M)`` fragment grid per tile — every intermediate is a new
temporary, ``trans_before`` needs an extra concatenate, and the backward pass
re-materialises ``(P, M, 3)`` suffix-colour stacks and a ``(P, M, 2, 2)``
outer-product tensor per tile.  For the hot SLAM loop this memory traffic is
the wall-clock, not the flops.

This module keeps the same mathematical pipeline but restructures it around a
single flat fragment arena for the whole image:

* all tile intersections are flattened into one ``(n_fragments,)`` fragment
  list (Gaussian row, linear pixel id, tile id, depth rank) —
  :class:`FlatFragments`;
* every forward intermediate (deltas, Gaussian values, alphas, transmittance,
  weights, processed/clamp masks) lives in one preallocated flat arena;
  per-tile compute writes *into* contiguous views of it (in-place ufuncs, an
  exclusive ``cumprod`` with an ``out=`` target, no concatenates), so the
  per-tile caches the backward pass / hardware model / profiling consume are
  free reshaped views of the arena rather than per-tile copies;
* the segmented exclusive cumulative product over per-pixel fragment
  segments is computed blockwise (segments of one tile share their length, so
  each tile block is one ``np.cumprod`` call — bit-identical to the reference
  backend); :func:`segmented_exclusive_cumprod` provides the general
  Hillis-Steele doubling scan for arbitrary segment layouts and is pinned to
  the blocked variant by the property tests;
* the flat backward pass (:func:`rasterize_backward_flat`) folds the colour
  and depth suffix terms into one ``(P, 3) @ (3, M)`` BLAS product and a
  single suffix scan over a ``(P, M)`` matrix, computes the conic gradient
  component-wise instead of materialising the ``(P, M, 2, 2)`` outer tensor,
  and scatters with unique-index fancy assignment instead of ``np.add.at``.

Numerically the forward pass is bit-compatible with the tile backend except
for per-pixel accumulation order; the backward factorisation regroups sums
and stays well below the 1e-8 differential-test tolerance.  The differential
harness in :mod:`repro.testing` pins both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.gaussians.camera import Camera
from repro.gaussians.gaussian_model import GaussianCloud
from repro.gaussians.projection import ProjectedGaussians, project_gaussians
from repro.gaussians.rasterizer import (
    ALPHA_CLAMP,
    ALPHA_CUTOFF,
    TRANSMITTANCE_EPS,
    RenderResult,
    TileRenderCache,
)
from repro.gaussians.se3 import SE3
from repro.gaussians.sorting import TileIntersections, build_tile_lists
from repro.gaussians.tiling import TileGrid

if TYPE_CHECKING:
    from repro.gaussians.geom_cache import GeometryCache


@dataclass
class FlatFragments:
    """The flattened (pixel, Gaussian) intersection list of one render.

    Fragments are pixel-major: all fragments of one pixel are contiguous and
    front-to-back depth ordered, pixels of one tile are contiguous, tiles
    appear in ascending tile id.  The per-fragment index arrays are built
    lazily (the forward pass only needs the block layout); accessing
    ``rows`` / ``pixel_ids`` / ``tile_ids`` / ``pos_in_pixel`` materialises
    them once and caches the result.
    """

    width: int
    tile_slices: list[tuple[int, int, int]]  # (tile_id, start, stop) fragment ranges
    tile_rows: list[np.ndarray]  # per non-empty tile: (M,) projected rows
    tile_pixel_lin: list[np.ndarray]  # per non-empty tile: (P,) linear pixel ids
    n_fragments: int
    max_per_pixel: int  # longest per-pixel segment (bounds the scan depth)
    _rows: np.ndarray | None = field(default=None, repr=False)
    _pixel_ids: np.ndarray | None = field(default=None, repr=False)
    _tile_ids: np.ndarray | None = field(default=None, repr=False)
    _pos_in_pixel: np.ndarray | None = field(default=None, repr=False)

    @property
    def rows(self) -> np.ndarray:
        """(F,) projected-Gaussian row of each fragment."""
        if self._rows is None:
            self._rows = _concat_or_empty(
                [
                    np.tile(rows, lin.shape[0])
                    for rows, lin in zip(self.tile_rows, self.tile_pixel_lin)
                ]
            )
        return self._rows

    @property
    def pixel_ids(self) -> np.ndarray:
        """(F,) linear pixel id (``v * width + u``) of each fragment."""
        if self._pixel_ids is None:
            self._pixel_ids = _concat_or_empty(
                [
                    np.repeat(lin, rows.shape[0])
                    for rows, lin in zip(self.tile_rows, self.tile_pixel_lin)
                ]
            )
        return self._pixel_ids

    @property
    def tile_ids(self) -> np.ndarray:
        """(F,) tile id of each fragment."""
        if self._tile_ids is None:
            self._tile_ids = _concat_or_empty(
                [
                    np.full(stop - start, tile_id, dtype=np.int64)
                    for tile_id, start, stop in self.tile_slices
                ]
            )
        return self._tile_ids

    @property
    def pos_in_pixel(self) -> np.ndarray:
        """(F,) depth rank of each fragment within its pixel's segment."""
        if self._pos_in_pixel is None:
            self._pos_in_pixel = _concat_or_empty(
                [
                    np.tile(np.arange(rows.shape[0], dtype=np.int64), lin.shape[0])
                    for rows, lin in zip(self.tile_rows, self.tile_pixel_lin)
                ]
            )
        return self._pos_in_pixel


def _concat_or_empty(parts: list[np.ndarray]) -> np.ndarray:
    if not parts:
        return np.zeros(0, dtype=np.int64)
    return np.concatenate(parts)


def build_flat_fragments(intersections: TileIntersections) -> FlatFragments:
    """Flatten the per-tile depth-sorted lists into one fragment layout."""
    grid = intersections.grid
    width = grid.width
    tile_slices: list[tuple[int, int, int]] = []
    tile_rows: list[np.ndarray] = []
    tile_pixel_lin: list[np.ndarray] = []
    offset = 0
    max_per_pixel = 0

    for tile_id, rows in enumerate(intersections.per_tile):
        m_count = int(rows.size)
        if m_count == 0:
            continue
        x0, y0, x1, y1 = grid.tile_bounds(tile_id)
        pixel_lin = (
            np.arange(y0, y1)[:, None] * width + np.arange(x0, x1)[None, :]
        ).ravel()
        n_frag = pixel_lin.shape[0] * m_count
        tile_slices.append((tile_id, offset, offset + n_frag))
        tile_rows.append(rows)
        tile_pixel_lin.append(pixel_lin)
        offset += n_frag
        max_per_pixel = max(max_per_pixel, m_count)

    return FlatFragments(
        width=width,
        tile_slices=tile_slices,
        tile_rows=tile_rows,
        tile_pixel_lin=tile_pixel_lin,
        n_fragments=offset,
        max_per_pixel=max_per_pixel,
    )


def segmented_exclusive_cumprod(
    values: np.ndarray, pos_in_segment: np.ndarray, max_segment: int
) -> np.ndarray:
    """Exclusive cumulative product within contiguous segments.

    ``pos_in_segment`` gives each element's rank inside its segment; segments
    must be contiguous.  Uses Hillis-Steele doubling: ``ceil(log2(max_segment))``
    fully vectorised passes over the array instead of one sequential
    ``np.cumprod`` per segment.  The production forward pass uses the
    bit-exact blocked variant (per-tile ``cumprod`` on arena views, possible
    because segments of one tile share their length); this general scan
    handles arbitrary segment layouts and cross-checks the blocked one in the
    property tests.
    """
    n = values.shape[0]
    if n == 0:
        return values.copy()
    inclusive = values.copy()
    shift = 1
    while shift < max_segment:
        shifted = np.empty_like(inclusive)
        shifted[:shift] = 1.0
        shifted[shift:] = inclusive[:-shift]
        # Elements fewer than `shift` steps into their segment would read
        # across the segment boundary; multiply by the identity instead.
        np.copyto(shifted, 1.0, where=pos_in_segment < shift)
        inclusive = inclusive * shifted
        shift <<= 1
    exclusive = np.empty_like(inclusive)
    exclusive[0] = 1.0
    exclusive[1:] = inclusive[:-1]
    exclusive[pos_in_segment == 0] = 1.0
    return exclusive


@dataclass
class FlatArena:
    """Preallocated flat storage for every per-fragment forward intermediate.

    A single-view render owns an arena sized to its own fragment count; the
    batched rasterizer (:mod:`repro.gaussians.batch`) allocates one arena for
    the *sum* of all views' fragments and hands each view a base offset, so
    the whole multi-view forward pass shares one set of allocations.
    """

    deltas: np.ndarray  # (F, 2)
    gauss: np.ndarray  # (F,)
    alphas: np.ndarray  # (F,)
    trans: np.ndarray  # (F,)
    weights: np.ndarray  # (F,)
    processed: np.ndarray  # (F,) bool
    clamp: np.ndarray  # (F,) bool

    @property
    def n_fragments(self) -> int:
        return int(self.gauss.shape[0])


def allocate_flat_arena(n_fragments: int) -> FlatArena:
    """Allocate an uninitialised arena for ``n_fragments`` fragments."""
    return FlatArena(
        deltas=np.empty((n_fragments, 2)),
        gauss=np.empty(n_fragments),
        alphas=np.empty(n_fragments),
        trans=np.empty(n_fragments),
        weights=np.empty(n_fragments),
        processed=np.empty(n_fragments, dtype=bool),
        clamp=np.empty(n_fragments, dtype=bool),
    )


# Headroom factor applied when a recycled arena must grow: mapping windows
# densify a little every call, so growing to the exact new size would
# reallocate (and re-fault) on every window.  25% slack amortises that.
ARENA_GROWTH = 1.25


def ensure_flat_arena(arena: FlatArena | None, n_fragments: int) -> FlatArena:
    """Grow-only arena recycling: reuse ``arena`` when it fits, else grow it.

    The returned arena holds *at least* ``n_fragments`` rows; renders slice
    base-offset views into it, so extra capacity is free.  Growth keeps the
    high-water mark: the new capacity is the larger of the request and
    ``ARENA_GROWTH`` times the previous capacity, so a sequence of slowly
    growing windows reallocates O(log) times instead of every call.
    """
    if arena is not None and arena.n_fragments >= n_fragments:
        return arena
    capacity = n_fragments
    if arena is not None:
        capacity = max(capacity, int(arena.n_fragments * ARENA_GROWTH) + 1)
    return allocate_flat_arena(capacity)


def rasterize_flat(
    cloud: GaussianCloud,
    camera: Camera,
    pose_cw: SE3,
    background: np.ndarray | None = None,
    tile_size: int = 16,
    subtile_size: int = 4,
    active_only: bool = True,
    precomputed: tuple[ProjectedGaussians, TileIntersections] | None = None,
    cache: "GeometryCache | None" = None,
) -> RenderResult:
    """Flat-arena render; drop-in equivalent of ``rasterize(backend="tile")``.

    Passing a :class:`repro.gaussians.geom_cache.GeometryCache` as ``cache``
    memoises the Step 1-2 pipeline across calls keyed by ``(view, cloud
    epoch)``; the cache also owns the fragment arena, so consume each render
    before requesting the next one from the same cache.
    """
    if cache is not None and precomputed is None:
        return cache.render_single(
            cloud,
            camera,
            pose_cw,
            background=background,
            tile_size=tile_size,
            subtile_size=subtile_size,
            active_only=active_only,
        )
    if precomputed is not None:
        projected, intersections = precomputed
    else:
        projected = project_gaussians(cloud, camera, pose_cw, active_only=active_only)
        grid = TileGrid(camera.width, camera.height, tile_size, subtile_size)
        intersections = build_tile_lists(projected, grid)
    fragments = build_flat_fragments(intersections)
    arena = allocate_flat_arena(fragments.n_fragments)
    return rasterize_flat_into(projected, intersections, fragments, background, arena, base=0)


def rasterize_flat_into(
    projected: ProjectedGaussians,
    intersections: TileIntersections,
    fragments: FlatFragments,
    background: np.ndarray | None,
    arena: FlatArena,
    base: int,
) -> RenderResult:
    """Run the flat forward pass, writing intermediates into ``arena[base:]``.

    ``fragments`` must describe ``intersections`` (see
    :func:`build_flat_fragments`) and ``arena`` must have at least
    ``base + fragments.n_fragments`` rows.  Single-view rendering passes a
    private arena with ``base=0``; the batch path shares one arena across all
    views.
    """
    if background is None:
        background = np.zeros(3)
    background = np.asarray(background, dtype=np.float64).reshape(3)
    grid = intersections.grid
    camera = projected.camera
    height, width = camera.height, camera.width
    if arena.n_fragments < base + fragments.n_fragments:
        raise ValueError(
            f"arena holds {arena.n_fragments} fragments but view needs "
            f"[{base}, {base + fragments.n_fragments})"
        )

    image = np.tile(background, (height, width, 1))
    depth = np.zeros((height, width))
    alpha_map = np.zeros((height, width))
    frag_counts = np.zeros((height, width), dtype=int)

    # Per-tile compute below writes into contiguous views of the arena, so the
    # TileRenderCache entries are free views rather than per-tile copies.
    deltas_flat = arena.deltas
    gauss_flat = arena.gauss
    alphas_flat = arena.alphas
    trans_flat = arena.trans
    weights_flat = arena.weights
    processed_flat = arena.processed
    clamp_flat = arena.clamp

    means2d = projected.means2d
    conics = projected.conics
    opacities = projected.opacities
    colors = projected.colors
    depths = projected.depths
    tile_caches: list[TileRenderCache] = []

    for (tile_id, start, stop), rows, pixel_lin in zip(
        fragments.tile_slices, fragments.tile_rows, fragments.tile_pixel_lin
    ):
        p_count = pixel_lin.shape[0]
        m_count = rows.shape[0]
        shape = (p_count, m_count)
        pixel_coords = grid.tile_pixel_coordinates(tile_id)
        lo, hi = base + start, base + stop

        deltas = deltas_flat[lo:hi].reshape(p_count, m_count, 2)
        dx = deltas[:, :, 0]
        dy = deltas[:, :, 1]
        gauss = gauss_flat[lo:hi].reshape(shape)
        alphas = alphas_flat[lo:hi].reshape(shape)
        trans_before = trans_flat[lo:hi].reshape(shape)
        weights = weights_flat[lo:hi].reshape(shape)
        processed = processed_flat[lo:hi].reshape(shape)
        clamp_mask = clamp_flat[lo:hi].reshape(shape)

        # Step 3-1 Alpha computing (in-place into the arena views).  The
        # association order matches the tile backend exactly.
        np.subtract(pixel_coords[:, :1], means2d[rows, 0][None, :], out=dx)
        np.subtract(pixel_coords[:, 1:], means2d[rows, 1][None, :], out=dy)
        conic = conics[rows]
        np.multiply(conic[:, 0, 0][None, :], np.square(dx), out=gauss)
        cross = (2.0 * conic[:, 0, 1])[None, :] * dx
        cross *= dy
        gauss += cross
        tail = conic[:, 1, 1][None, :] * np.square(dy)
        gauss += tail
        gauss *= -0.5
        np.minimum(gauss, 0.0, out=gauss)
        np.exp(gauss, out=gauss)

        np.multiply(opacities[rows][None, :], gauss, out=alphas)
        np.greater(alphas, ALPHA_CLAMP, out=clamp_mask)
        np.minimum(alphas, ALPHA_CLAMP, out=alphas)
        alphas[alphas < ALPHA_CUTOFF] = 0.0

        # Step 3-2 Alpha blending: exclusive cumprod written straight into the
        # arena (no concatenate), then termination masking.
        one_minus = 1.0 - alphas
        trans_before[:, 0] = 1.0
        if m_count > 1:
            np.cumprod(one_minus[:, :-1], axis=1, out=trans_before[:, 1:])
        np.greater_equal(trans_before, TRANSMITTANCE_EPS, out=processed)
        np.multiply(trans_before, alphas, out=weights)
        weights *= processed

        # Per-pixel accumulation (small BLAS products per tile).
        pixel_color = weights @ colors[rows]
        pixel_depth = weights @ depths[rows]
        pixel_alpha = weights.sum(axis=1)
        v_idx, u_idx = pixel_lin // width, pixel_lin % width
        image[v_idx, u_idx] = pixel_color + (1.0 - pixel_alpha)[:, None] * background
        depth[v_idx, u_idx] = pixel_depth
        alpha_map[v_idx, u_idx] = pixel_alpha
        frag_counts[v_idx, u_idx] = processed.sum(axis=1)

        tile_caches.append(
            TileRenderCache(
                tile_id=tile_id,
                rows=rows,
                pixel_coords=pixel_coords,
                pixel_indices=(v_idx, u_idx),
                deltas=deltas,
                gauss_values=gauss,
                alphas=alphas,
                transmittance_before=trans_before,
                weights=weights,
                processed=processed,
                clamp_mask=clamp_mask,
            )
        )

    return RenderResult(
        image=np.clip(image, 0.0, 1.0),
        depth=depth,
        alpha=alpha_map,
        fragments_per_pixel=frag_counts,
        projected=projected,
        intersections=intersections,
        tile_caches=tile_caches,
        camera=camera,
        pose_cw=projected.pose_cw,
        background=background,
        backend="flat",
    )


def rasterize_backward_flat(
    result: RenderResult,
    dL_dimage: np.ndarray,
    dL_ddepth: np.ndarray | None = None,
):
    """Step 4 Rendering BP, restructured for memory traffic.

    Produces the same :class:`~repro.gaussians.backward.ScreenSpaceGradients`
    as the reference ``rasterize_backward`` (the differential harness pins
    agreement to 1e-8) while avoiding its large temporaries:

    * the colour *and* depth suffix terms are folded into one per-tile
      ``(P, M)`` matrix ``B[p, k] = dL/dC_p . c_k + dL/dD_p * d_k`` computed
      with a single BLAS product, so ``dL/dalpha = T * B - suffix(w * B) /
      (1 - alpha)`` needs one suffix scan over a 2D matrix instead of a
      ``(P, M, 3)`` stack;
    * the conic gradient is reduced component-wise (three ``einsum``
      contractions) instead of materialising the ``(P, M, 2, 2)`` outer
      tensor;
    * per-tile Gaussian rows are unique, so scatters use fancy-indexed
      ``+=`` rather than ``np.add.at``.
    """
    from repro.gaussians.backward import GradientTrace, ScreenSpaceGradients

    projected = result.projected
    n_visible = projected.n_visible
    grads_colors = np.zeros((n_visible, 3))
    grads_opacity = np.zeros(n_visible)
    grads_means2d = np.zeros((n_visible, 2))
    grads_conics = np.zeros((n_visible, 2, 2))
    grads_depths = np.zeros(n_visible)
    trace = GradientTrace(fragments_per_pixel=result.fragments_per_pixel.copy())

    dL_dimage = np.asarray(dL_dimage, dtype=np.float64)
    if dL_dimage.shape != result.image.shape:
        raise ValueError(
            f"dL_dimage shape {dL_dimage.shape} does not match image {result.image.shape}"
        )
    if dL_ddepth is not None:
        dL_ddepth = np.asarray(dL_ddepth, dtype=np.float64)
        if dL_ddepth.shape != result.depth.shape:
            raise ValueError(
                f"dL_ddepth shape {dL_ddepth.shape} does not match depth {result.depth.shape}"
            )

    for cache in result.tile_caches:
        rows = cache.rows
        v_idx, u_idx = cache.pixel_indices
        pixel_color_grad = dL_dimage[v_idx, u_idx]  # (P, 3)

        colors = projected.colors[rows]  # (M, 3)
        depths = projected.depths[rows]  # (M,)
        opacities = projected.opacities[rows]  # (M,)
        conic = projected.conics[rows]  # (M, 2, 2)

        weights = cache.weights  # (P, M)
        alphas = cache.alphas
        gauss = cache.gauss_values
        trans_before = cache.transmittance_before
        deltas = cache.deltas

        # Direct colour / depth gradients: dL/dc_k = w_k * dL/dC_P.
        grads_colors[rows] += weights.T @ pixel_color_grad
        if dL_ddepth is not None:
            pixel_depth_grad = dL_ddepth[v_idx, u_idx]  # (P,)
            grads_depths[rows] += weights.T @ pixel_depth_grad
            # Fold colour and depth into one per-fragment blend gradient.
            blend = pixel_color_grad @ colors.T + pixel_depth_grad[:, None] * depths[None, :]
        else:
            blend = pixel_color_grad @ colors.T  # (P, M)

        # dL/dalpha_k = T_k * B_k - (sum_{n>k} w_n B_n) / (1 - alpha_k).
        weighted_blend = weights * blend
        suffix = np.cumsum(weighted_blend[:, ::-1], axis=1)[:, ::-1] - weighted_blend
        one_minus_alpha = np.maximum(1.0 - alphas, 1.0 - 0.995)
        dL_dalpha = trans_before * blend
        dL_dalpha -= suffix / one_minus_alpha

        valid = cache.processed & (alphas > 0.0) & (~cache.clamp_mask)
        dL_dalpha *= valid

        # alpha = opacity * G  ->  opacity and Gaussian-value chains.
        grads_opacity[rows] += np.einsum("pm,pm->m", gauss, dL_dalpha)
        common = dL_dalpha * gauss
        common *= opacities[None, :]  # == dL/dG * G

        # G = exp(-0.5 d^T A d): dG/dmu = G * (A d), dG/dA = -0.5 * G * d d^T.
        dx = deltas[:, :, 0]
        dy = deltas[:, :, 1]
        a = conic[:, 0, 0][None, :]
        b = conic[:, 0, 1][None, :]
        c = conic[:, 1, 1][None, :]
        a_dx0 = a * dx + b * dy
        a_dx1 = b * dx + c * dy
        grads_means2d[rows, 0] += np.einsum("pm,pm->m", common, a_dx0)
        grads_means2d[rows, 1] += np.einsum("pm,pm->m", common, a_dx1)
        gxx = -0.5 * np.einsum("pm,pm,pm->m", common, dx, dx)
        gxy = -0.5 * np.einsum("pm,pm,pm->m", common, dx, dy)
        gyy = -0.5 * np.einsum("pm,pm,pm->m", common, dy, dy)
        grads_conics[rows, 0, 0] += gxx
        grads_conics[rows, 0, 1] += gxy
        grads_conics[rows, 1, 0] += gxy
        grads_conics[rows, 1, 1] += gyy

        # Trace of pixel-level contributions for the hardware model.
        contributions = (weights > 0.0).sum(axis=0)
        has_grad = contributions > 0
        if np.any(has_grad):
            trace.tile_ids.append(cache.tile_id)
            trace.per_tile_source_indices.append(projected.indices[rows[has_grad]])
            trace.per_tile_pixel_counts.append(contributions[has_grad].astype(int))

    return ScreenSpaceGradients(
        projected=projected,
        colors=grads_colors,
        opacities=grads_opacity,
        means2d=grads_means2d,
        conics=grads_conics,
        depths=grads_depths,
        trace=trace,
    )
