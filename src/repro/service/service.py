"""The multi-tenant render service: sessions, fair scheduling, admission.

One :class:`RenderService` owns many :class:`RenderSession`\\ s and schedules
their batch renders as interleaved *work units* (one unit = one view) instead
of letting every tenant monopolise a private backend:

* **Shared pool.**  Every session's engine shares the process-wide sharded
  worker pool (``repro.engine.sharded`` keys pools by worker count, so equal
  configs resolve to one OS pool) — the service adds the scheduling layer
  that interleaves tenants over it.  Cache-off sessions dispatch each round
  as a sub-batch through ``RenderEngine.render_batch(..., managed=False)``
  (worker-side planning, parallel execution, PR 8 self-healing); cache-on
  sessions plan through the public ``plan_batch`` seam against their
  parent-resident geometry cache and execute elected units in the parent,
  which is what makes cross-session byte budgets observable and enforceable.
  Either way the per-view outputs are bitwise-identical to a private solo
  engine — grouping work units into rounds never changes a view's pixels
  (pinned by the differential runner's service phase).

* **Weighted-fair queuing.**  Stride scheduling over per-session ``pass``
  values: each round elects the backlogged session with the smallest pass
  and advances it by ``units / weight``, so throughput shares converge to
  the weight ratio and no session waits more than
  :meth:`RenderService.starvation_bound_units` units between its own
  dispatches.

* **Admission control.**  ``max_sessions`` bounds open sessions and
  ``max_queued_units`` bounds undispatched units; both reject with
  :class:`AdmissionError` instead of queueing unboundedly.

* **Graceful close.**  ``close_session(drain=True)`` runs the scheduler
  until the session's in-flight units finish; ``drain=False`` cancels its
  pending units (outstanding :meth:`ServiceJob.result` calls raise
  :class:`SessionClosedError`).
"""

from __future__ import annotations

import math
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.engine import EngineConfig, RenderEngine
from repro.gaussians.batch import (
    BatchRenderResult,
    ShardAttribution,
    _normalise_backgrounds,
    execute_view,
    plan_batch_views,
)
from repro.gaussians.geom_cache import CacheClock
from repro.service.budget import CacheBudgetManager

if TYPE_CHECKING:
    import numpy as np

    from repro.gaussians import Camera, GaussianCloud, SE3


class AdmissionError(RuntimeError):
    """A session or work submission was rejected by admission control."""


class SessionClosedError(RuntimeError):
    """The session (or its service) is closed; its work was not performed."""


@dataclass
class SessionStats:
    """Per-session scheduling counters (service-side attribution)."""

    units_done: int = 0
    rounds: int = 0
    queue_wait_seconds: float = 0.0
    service_seconds: float = 0.0


class ServiceJob:
    """One submitted batch render: per-view units tracked to completion.

    Returned by :meth:`RenderSession.submit`; :meth:`result` drives the
    service scheduler until every unit of *this* job has been dispatched
    (other sessions' units are interleaved fairly in between) and stitches
    the per-view results into one :class:`BatchRenderResult` whose
    ``sharding`` attribution carries the session id and the per-view
    queue-wait / service seconds.
    """

    def __init__(
        self,
        session: "RenderSession",
        cloud: "GaussianCloud",
        cameras: "Sequence[Camera]",
        poses_cw: "Sequence[SE3]",
        backgrounds,
        tile_size: int,
        subtile_size: int,
    ):
        self.session = session
        self.cloud = cloud
        self.cameras = list(cameras)
        self.poses_cw = list(poses_cw)
        if len(self.cameras) != len(self.poses_cw):
            raise ValueError(
                f"got {len(self.cameras)} cameras but {len(self.poses_cw)} poses; "
                "one pose per view"
            )
        if not self.cameras:
            raise ValueError("a service job needs at least one view")
        self.n_views = len(self.cameras)
        self.backgrounds = _normalise_backgrounds(backgrounds, self.n_views)
        self.tile_size = tile_size
        self.subtile_size = subtile_size
        self.cancelled = False
        self.plan = None  # RenderPlan on the cached path (planned at submit)
        now = time.perf_counter()
        self._pending = deque(range(self.n_views))
        self._enqueued_at = [now] * self.n_views
        self._results = [None] * self.n_views
        self._view_seconds = [0.0] * self.n_views
        self._queue_wait = [0.0] * self.n_views
        self._service_seconds = [0.0] * self.n_views
        # Pool path: [(dispatched indices, sub-batch result)] per round, kept
        # for attribution merging; cached rounds execute in the parent and
        # leave this empty.
        self._rounds: list[tuple[list[int], BatchRenderResult]] = []
        self._stitched: BatchRenderResult | None = None

    @property
    def pending_units(self) -> int:
        return len(self._pending)

    @property
    def done(self) -> bool:
        return not self._pending

    def result(self) -> BatchRenderResult:
        """Drive the scheduler until this job completes; the stitched batch."""
        service = self.session.service
        while not self.done:
            if self.cancelled:
                break
            if service.run_round() == 0:
                # No session has pending units, yet this job is incomplete:
                # it was cancelled out of the queues by a close.
                break
        if self.cancelled or not self.done:
            raise SessionClosedError(
                f"session {self.session.session_id!r} was closed before this "
                "job finished; its pending units were cancelled"
            )
        if self._stitched is None:
            self._stitched = self._stitch()
        return self._stitched

    # -- stitching -----------------------------------------------------------
    def _merged_attribution(self) -> ShardAttribution:
        n = self.n_views
        worker_ids = [-1] * n
        view_shard_seconds = [0.0] * n
        view_plan_seconds = [0.0] * n
        worker_seconds: dict[int, float] = {}
        dispatch_seconds = 0.0
        stitch_seconds = 0.0
        shard_wall_seconds = 0.0
        plan_site = "parent"
        fault_events: list = []
        fault_retries = 0
        quarantined: set[int] = set()
        respawned: set[int] = set()
        escalated: list[int] = []
        for indices, sub in self._rounds:
            sharding = sub.sharding
            if sharding is None:
                continue  # degraded serial round: defaults already apply
            plan_site = sharding.plan_site
            for slot, index in enumerate(indices):
                worker_ids[index] = sharding.worker_ids[slot]
                view_shard_seconds[index] = sharding.view_shard_seconds[slot]
                if sharding.view_plan_seconds:
                    view_plan_seconds[index] = sharding.view_plan_seconds[slot]
            for worker_id, seconds in sharding.worker_seconds.items():
                worker_seconds[worker_id] = (
                    worker_seconds.get(worker_id, 0.0) + seconds
                )
            dispatch_seconds += sharding.dispatch_seconds
            stitch_seconds += sharding.stitch_seconds
            shard_wall_seconds += sharding.shard_wall_seconds
            for event in sharding.fault_events:
                event = dict(event)
                views = event.get("views")
                if isinstance(views, list):
                    # Remap dispatch-local view indices to this job's.
                    event["views"] = [
                        indices[v] for v in views if 0 <= v < len(indices)
                    ]
                fault_events.append(event)
            fault_retries += sharding.fault_retries
            quarantined.update(sharding.fault_quarantined_workers)
            respawned.update(sharding.fault_respawned_workers)
            escalated.extend(indices[v] for v in sharding.escalated_views)
        if self.plan is not None:
            view_plan_seconds = [unit.plan_seconds for unit in self.plan.units]
        return ShardAttribution(
            n_workers=max(1, len({w for w in worker_ids if w >= 0})),
            worker_ids=worker_ids,
            view_shard_seconds=view_shard_seconds,
            worker_seconds=worker_seconds,
            dispatch_seconds=dispatch_seconds,
            stitch_seconds=stitch_seconds,
            shard_wall_seconds=shard_wall_seconds,
            plan_site=plan_site,
            view_plan_seconds=view_plan_seconds,
            fault_events=fault_events,
            fault_retries=fault_retries,
            fault_quarantined_workers=sorted(quarantined),
            fault_respawned_workers=sorted(respawned),
            escalated_views=sorted(escalated),
            session_id=self.session.session_id,
            view_queue_wait_seconds=list(self._queue_wait),
            view_service_seconds=list(self._service_seconds),
        )

    def _stitch(self) -> BatchRenderResult:
        shared = None
        shared_seconds = 0.0
        if self.plan is not None:
            shared = self.plan.shared
            shared_seconds = self.plan.shared_seconds
        else:
            for _indices, sub in self._rounds:
                if sub.shared is not None:
                    shared = sub.shared
                shared_seconds += sub.shared_seconds
        batch = BatchRenderResult(
            views=list(self._results),
            shared=shared,
            # Cached units rasterized into the session cache's shared arena,
            # pool units into worker-owned arenas: either way there is no
            # parent arena for the caller to recycle.
            arena=None,
            shared_seconds=shared_seconds,
            view_seconds=list(self._view_seconds),
            sharding=self._merged_attribution(),
        )
        if self.plan is not None:
            # Cached results alias the session cache's arena until consumed;
            # reuse the engine's ownership rail so a premature next submit
            # fails loudly instead of overwriting pixels.
            self.session.engine._claim(batch, "service render_batch")
        return batch


class RenderSession:
    """One tenant of a :class:`RenderService`.

    Sessions are created by :meth:`RenderService.open_session` and own a
    :class:`RenderEngine` configured like the service (minus any per-session
    ``geom_cache`` override).  Submit work with :meth:`submit` /
    :meth:`render_batch`; gradients flow through :meth:`backward_batch`
    exactly as on a private engine.
    """

    def __init__(
        self,
        service: "RenderService",
        session_id: str,
        weight: float,
        engine: RenderEngine,
        cache_budget_bytes: int,
        order: int,
        start_pass: float,
    ):
        self.service = service
        self.session_id = session_id
        self.weight = weight
        self.engine = engine
        self.cache_budget_bytes = cache_budget_bytes
        self.stats = SessionStats()
        self.closed = False
        self._order = order
        self._pass = start_pass
        self._jobs: deque[ServiceJob] = deque()

    @property
    def cache_enabled(self) -> bool:
        return self.engine.config.geom_cache

    # -- scheduling state ----------------------------------------------------
    def _front_job(self) -> ServiceJob | None:
        while self._jobs and self._jobs[0].done:
            self._jobs.popleft()
        return self._jobs[0] if self._jobs else None

    def pending_units(self) -> int:
        return sum(job.pending_units for job in self._jobs)

    # -- work submission -----------------------------------------------------
    def submit(
        self,
        cloud: "GaussianCloud",
        cameras: "Sequence[Camera]",
        poses_cw: "Sequence[SE3]",
        backgrounds=None,
        *,
        tile_size: int | None = None,
        subtile_size: int | None = None,
    ) -> ServiceJob:
        """Queue a batch render; its units are scheduled across rounds.

        Admission-checked: raises :class:`AdmissionError` when the submission
        would push the service past ``max_queued_units``.  On cache-on
        sessions the batch is planned here, through the session cache (the
        ``plan_batch`` seam), and cache budgets are enforced right after
        planning.
        """
        if self.closed:
            raise SessionClosedError(
                f"session {self.session_id!r} is closed; open a new session "
                "to submit work"
            )
        config = self.engine.config
        job = ServiceJob(
            session=self,
            cloud=cloud,
            cameras=cameras,
            poses_cw=poses_cw,
            backgrounds=backgrounds,
            tile_size=config.tile_size if tile_size is None else tile_size,
            subtile_size=config.subtile_size if subtile_size is None else subtile_size,
        )
        self.service._admit_units(job.n_views)
        if self.cache_enabled:
            # Cached units rasterize into the session cache's single shared
            # arena, so a second in-flight (or unconsumed) cached job would
            # overwrite the first one's pixels.  The claim guard rejects an
            # unconsumed completed batch; the queue check rejects a job that
            # is still being scheduled.
            self.engine._claim_guard("service submit")
            if self._front_job() is not None:
                raise AdmissionError(
                    f"session {self.session_id!r} already has an in-flight "
                    "cached job; consume or cancel it before submitting more "
                    "(cache-on sessions schedule one job at a time)"
                )
            job.plan = plan_batch_views(
                job.cloud,
                job.cameras,
                job.poses_cw,
                backgrounds=job.backgrounds,
                tile_size=job.tile_size,
                subtile_size=job.subtile_size,
                cache=self.engine.cache,
            )
            self.service._budget.enforce()
        self._jobs.append(job)
        self.service._queued_units += job.n_views
        return job

    def render_batch(self, *args, **kwargs) -> BatchRenderResult:
        """Submit and wait: ``submit(...).result()``."""
        return self.submit(*args, **kwargs).result()

    def backward_batch(
        self,
        batch: BatchRenderResult,
        cloud: "GaussianCloud",
        dL_dimages,
        dL_ddepths=None,
        *,
        compute_pose_gradient: bool = False,
    ):
        """Fused backward over a service-stitched batch.

        Routed explicitly to the sharded backend whenever any view still
        carries a worker handle — a mixed batch (some rounds degraded to
        serial execution) must not be routed by its first view alone.
        """
        backend = None
        if any(
            getattr(view, "shard_info", None) is not None for view in batch.views
        ):
            backend = "sharded"
        return self.engine.backward_batch(
            batch,
            cloud,
            dL_dimages,
            dL_ddepths,
            compute_pose_gradient=compute_pose_gradient,
            backend=backend,
        )

    def snapshot(self, render, gradients=None, *, view_index=0, batch=None, **kwargs):
        """Engine snapshot stamped with this session's attribution.

        When ``batch`` is a service-stitched result, the view's queue-wait
        and service seconds are read from its attribution.
        """
        queue_wait = 0.0
        service_seconds = 0.0
        sharding = getattr(batch, "sharding", None)
        if sharding is not None and sharding.view_queue_wait_seconds:
            queue_wait = sharding.view_queue_wait_seconds[view_index]
            service_seconds = sharding.view_service_seconds[view_index]
        return self.engine.snapshot(
            render,
            gradients,
            view_index=view_index,
            session_id=self.session_id,
            queue_wait_seconds=queue_wait,
            service_seconds=service_seconds,
            **kwargs,
        )

    def cache_stats(self):
        return self.engine.cache_stats()

    def close(self, drain: bool = True) -> None:
        self.service.close_session(self, drain=drain)


class RenderService:
    """Session manager multiplexing tenants over the shared worker pool.

    ``config`` seeds every session's engine (default: the env-derived config
    pinned to the ``sharded`` backend) and carries the service knobs —
    ``service_max_sessions``, ``service_cache_budget_bytes``,
    ``service_default_weight``, ``service_fair_weights`` — all overridable
    per instance through the keyword arguments.
    """

    def __init__(
        self,
        config: EngineConfig | None = None,
        *,
        max_sessions: int | None = None,
        max_queued_units: int = 512,
        default_weight: float | None = None,
        fair_weights: "Mapping[str, float] | None" = None,
        cache_budget_bytes: int | None = None,
        round_quantum: int | None = None,
    ):
        if config is None:
            config = EngineConfig(backend="sharded")
        self.config = config
        self.max_sessions = (
            config.service_max_sessions if max_sessions is None else max_sessions
        )
        if self.max_sessions < 1:
            raise ValueError(
                f"max_sessions (REPRO_SERVICE_MAX_SESSIONS) must be >= 1, "
                f"got {self.max_sessions}"
            )
        if max_queued_units < 1:
            raise ValueError(
                f"max_queued_units must be >= 1, got {max_queued_units}"
            )
        self.max_queued_units = max_queued_units
        self.default_weight = (
            config.service_default_weight if default_weight is None else default_weight
        )
        if not (self.default_weight > 0):
            raise ValueError(
                f"default_weight (REPRO_SERVICE_FAIR_WEIGHTS) must be > 0, "
                f"got {self.default_weight}"
            )
        self.fair_weights = dict(config.service_fair_weights)
        if fair_weights:
            self.fair_weights.update(fair_weights)
        budget = (
            config.service_cache_budget_bytes
            if cache_budget_bytes is None
            else cache_budget_bytes
        )
        if budget > 0 and not config.geom_cache:
            raise ValueError(
                "cache_budget_bytes > 0 (REPRO_SERVICE_CACHE_BUDGET) requires "
                "the geometry cache: enable geom_cache (REPRO_GEOM_CACHE) or "
                "set the budget to 0"
            )
        # Units dispatched per scheduling round: the fairness granularity.
        # Defaults to the shard worker count so one round can occupy the
        # whole pool (sub-batches below 2 views degrade to serial execution).
        self.round_quantum = (
            max(2, config.shard_workers or 4)
            if round_quantum is None
            else max(1, round_quantum)
        )
        self._budget = CacheBudgetManager(global_budget_bytes=budget)
        self._clock = CacheClock()
        self._sessions: dict[str, RenderSession] = {}
        self._order_counter = 0
        self._queued_units = 0
        self._closed = False
        # (session_id, units) per scheduling round, in dispatch order —
        # the observable the fairness/starvation tests assert on.
        self.dispatch_log: list[tuple[str, int]] = []

    # -- session lifecycle ---------------------------------------------------
    def open_session(
        self,
        session_id: str | None = None,
        *,
        weight: float | None = None,
        cache_budget_bytes: int = 0,
        geom_cache: bool | None = None,
    ) -> RenderSession:
        """Admit one tenant; raises :class:`AdmissionError` at the cap.

        ``weight`` defaults to the service's ``fair_weights`` entry for this
        id, then to the default weight.  ``geom_cache`` overrides the service
        config per session; ``cache_budget_bytes`` caps this session's cache
        (0 = no per-session cap — the global budget still applies).
        """
        if self._closed:
            raise SessionClosedError("the render service is closed")
        if len(self._sessions) >= self.max_sessions:
            raise AdmissionError(
                f"cannot open a new session: max_sessions="
                f"{self.max_sessions} (REPRO_SERVICE_MAX_SESSIONS) sessions "
                "are already open; close one first"
            )
        if session_id is None:
            session_id = f"session-{self._order_counter}"
        if session_id in self._sessions:
            raise ValueError(f"session id {session_id!r} is already open")
        if weight is None:
            weight = self.fair_weights.get(session_id, self.default_weight)
        if not (weight > 0):
            raise ValueError(
                f"session weight must be > 0, got {weight} for {session_id!r}"
            )
        use_cache = self.config.geom_cache if geom_cache is None else geom_cache
        if cache_budget_bytes < 0:
            raise ValueError(
                f"cache_budget_bytes must be >= 0, got {cache_budget_bytes}"
            )
        if cache_budget_bytes > 0 and not use_cache:
            raise ValueError(
                f"session {session_id!r} sets cache_budget_bytes="
                f"{cache_budget_bytes} with its geometry cache disabled; "
                "enable geom_cache or drop the budget"
            )
        session_config = replace(
            self.config,
            geom_cache=use_cache,
            # The conflict check budget-without-cache is service-level;
            # a cache-off session under a budgeted service is legitimate.
            service_cache_budget_bytes=(
                self.config.service_cache_budget_bytes if use_cache else 0
            ),
        )
        engine = RenderEngine(session_config)
        # Late joiners start at the current minimum pass: they neither owe
        # the history they were not present for (which would starve them)
        # nor get credit for it (which would let them monopolise the pool).
        start_pass = min(
            (s._pass for s in self._sessions.values()), default=0.0
        )
        session = RenderSession(
            service=self,
            session_id=session_id,
            weight=weight,
            engine=engine,
            cache_budget_bytes=cache_budget_bytes,
            order=self._order_counter,
            start_pass=start_pass,
        )
        self._order_counter += 1
        if use_cache:
            cache = engine.cache
            cache.set_clock(self._clock)
            self._budget.register(session_id, cache, cache_budget_bytes)
        self._sessions[session_id] = session
        return session

    def close_session(self, session: RenderSession, drain: bool = True) -> None:
        """Close one session: drain its queued units, or cancel them.

        Draining runs whole scheduler rounds, so other sessions keep their
        fair share while this one finishes.  Cancelling marks the session's
        jobs cancelled — pending units are dropped and outstanding
        :meth:`ServiceJob.result` calls raise :class:`SessionClosedError`.
        """
        if session.closed:
            return
        if drain:
            while session.pending_units() > 0:
                if self.run_round() == 0:
                    break
        for job in session._jobs:
            if not job.done:
                job.cancelled = True
                self._queued_units -= job.pending_units
                job._pending.clear()
        session._jobs.clear()
        session.closed = True
        self._budget.unregister(session.session_id)
        session.engine.release()
        self._sessions.pop(session.session_id, None)

    def close(self, drain: bool = True) -> None:
        """Close every session (drained or cancelled) and refuse new ones."""
        for session in list(self._sessions.values()):
            self.close_session(session, drain=drain)
        self._closed = True

    # -- introspection -------------------------------------------------------
    @property
    def sessions(self) -> dict[str, RenderSession]:
        return dict(self._sessions)

    def queued_units(self) -> int:
        return self._queued_units

    def cache_report(self) -> dict:
        """Cross-session cache accounting: per-session stats + eviction log."""
        return {
            "sessions": self._budget.stats(),
            "total_bytes": self._budget.total_bytes(),
            "global_budget_bytes": self._budget.global_budget_bytes,
            "evictions": list(self._budget.eviction_log),
        }

    def starvation_bound_units(self, session: RenderSession) -> int:
        """Units other sessions can dispatch between ``session``'s turns.

        Stride scheduling bounds pass skew: after a dispatch, a backlogged
        session's pass grows by at most ``Q / w``; another session ``j`` keeps
        winning elections only while its pass trails, which caps its units at
        ``Q * (w_j / w + 1)``.  Summed over the other sessions this is
        ``Q * (W_other / w + n_other)`` — the bound the starvation regression
        test asserts.
        """
        others = [s for s in self._sessions.values() if s is not session]
        if not others:
            return 0
        other_weight = sum(s.weight for s in others)
        return math.ceil(
            self.round_quantum
            * (other_weight / session.weight + len(others))
        )

    # -- scheduling ----------------------------------------------------------
    def run_round(self) -> int:
        """Elect one session, dispatch up to a quantum of its units.

        Returns the number of units dispatched (0 when every queue is empty).
        The election is deterministic — smallest pass, ties broken by session
        open order — so interleavings replay exactly.
        """
        candidates = [
            session
            for session in self._sessions.values()
            if session._front_job() is not None
        ]
        if not candidates:
            return 0
        session = min(candidates, key=lambda s: (s._pass, s._order))
        job = session._front_job()
        count = min(self.round_quantum, job.pending_units)
        indices = [job._pending.popleft() for _ in range(count)]
        started = time.perf_counter()
        for index in indices:
            job._queue_wait[index] = started - job._enqueued_at[index]
        if job.plan is not None:
            self._execute_cached_round(session, job, indices)
        else:
            self._execute_pool_round(session, job, indices)
        elapsed = time.perf_counter() - started
        for index in indices:
            job._service_seconds[index] = elapsed / count
        session._pass += count / session.weight
        session.stats.units_done += count
        session.stats.rounds += 1
        session.stats.queue_wait_seconds += sum(
            job._queue_wait[index] for index in indices
        )
        session.stats.service_seconds += elapsed
        self._queued_units -= count
        self.dispatch_log.append((session.session_id, count))
        return count

    def drain(self) -> None:
        """Run scheduler rounds until every session's queue is empty."""
        while self.run_round() > 0:
            pass

    def _admit_units(self, n_units: int) -> None:
        if self._queued_units + n_units > self.max_queued_units:
            raise AdmissionError(
                f"cannot queue {n_units} work units: {self._queued_units} "
                f"are already queued and max_queued_units="
                f"{self.max_queued_units}; wait for in-flight work to drain"
            )

    def _execute_pool_round(
        self, session: RenderSession, job: ServiceJob, indices: list[int]
    ) -> None:
        """Dispatch the elected units as one sub-batch over the shared pool.

        ``managed=False`` keeps the engine's arena/claim machinery out of the
        way (each view's stitched output is copied out of shared memory by
        the sharded backend, so round results stay valid across later rounds
        on the same pool).
        """
        sub = session.engine.render_batch(
            job.cloud,
            [job.cameras[index] for index in indices],
            [job.poses_cw[index] for index in indices],
            backgrounds=[job.backgrounds[index] for index in indices],
            tile_size=job.tile_size,
            subtile_size=job.subtile_size,
            managed=False,
        )
        for slot, index in enumerate(indices):
            job._results[index] = sub.views[slot]
            job._view_seconds[index] = sub.view_seconds[slot]
        job._rounds.append((list(indices), sub))

    def _execute_cached_round(
        self, session: RenderSession, job: ServiceJob, indices: list[int]
    ) -> None:
        """Execute the elected pre-planned units against the session cache.

        Cached units must run in the process that planned them (they
        reference parent-resident cache entries), which is exactly what
        makes the cross-session byte budgets enforceable: every tenant's
        entries are visible to the service.
        """
        cache = session.engine.cache
        arena = cache.ensure_arena(job.plan.total_fragments)
        for index in indices:
            unit = job.plan.units[index]
            started = time.perf_counter()
            job._results[index] = execute_view(unit, arena, cache=cache)
            job._view_seconds[index] = unit.plan_seconds + (
                time.perf_counter() - started
            )
        # Refinement during cached renders can change an entry's resident
        # footprint; re-check the budgets while the hot entries are fresh.
        self._budget.enforce()
