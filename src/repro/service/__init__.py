"""Multi-tenant render service: many sessions, one shared worker pool.

:class:`RenderService` multiplexes many concurrent rendering tenants over the
*one* shared sharded worker pool the engine layer already maintains, instead
of a pool per backend instance: a central weighted-fair scheduler interleaves
per-session work units round by round, admission control bounds the open
sessions and the queued work (rejections raise :class:`AdmissionError`), and
cross-session geometry-cache byte budgets evict the globally least-recently
used entries through :class:`CacheBudgetManager`.  See the README "Render
service" section for the session lifecycle and semantics.
"""

from repro.service.budget import CacheBudgetManager
from repro.service.service import (
    AdmissionError,
    RenderService,
    RenderSession,
    ServiceJob,
    SessionClosedError,
    SessionStats,
)

__all__ = [
    "AdmissionError",
    "CacheBudgetManager",
    "RenderService",
    "RenderSession",
    "ServiceJob",
    "SessionClosedError",
    "SessionStats",
]
