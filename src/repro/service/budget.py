"""Cross-session geometry-cache byte budgets for the render service.

Each session's :class:`~repro.gaussians.geom_cache.GeometryCache` may carry a
per-session ``cache_budget_bytes``, and the service as a whole may carry a
global budget; both are enforced here by evicting least-recently-used entries
(:meth:`GeometryCache.evict_lru`).  The global pass compares recency *across*
sessions, which is meaningful because the service installs one shared
:class:`~repro.gaussians.geom_cache.CacheClock` into every registered cache —
the victim is the globally coldest entry, whichever tenant owns it.

Evicting an entry can never corrupt in-flight work: already-planned work
units hold direct references to their entries, so budget pressure only costs
the evicted view a rebuild (a ``miss``) on its next lookup — the bitwise
guarantee is pinned by the differential runner's service phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.gaussians.geom_cache import GeometryCache


@dataclass
class _BudgetedCache:
    session_id: str
    cache: "GeometryCache"
    budget_bytes: int  # 0 = no per-session budget


@dataclass
class CacheBudgetManager:
    """Enforces per-session and global geometry-cache byte budgets.

    ``global_budget_bytes=0`` disables the global pass; a registered cache
    with ``budget_bytes=0`` has no per-session cap.  Every eviction is
    appended to ``eviction_log`` as ``(session_id, view key)`` and counted in
    the owning cache's ``stats.budget_evictions``, so budget pressure is
    visible both service-wide and per tenant.
    """

    global_budget_bytes: int = 0
    eviction_log: list = field(default_factory=list)
    _caches: dict = field(default_factory=dict)

    def register(
        self, session_id: str, cache: "GeometryCache", budget_bytes: int = 0
    ) -> None:
        if budget_bytes < 0:
            raise ValueError(
                f"cache_budget_bytes must be >= 0 (0 disables the per-session "
                f"budget), got {budget_bytes}"
            )
        self._caches[session_id] = _BudgetedCache(session_id, cache, budget_bytes)

    def unregister(self, session_id: str) -> None:
        self._caches.pop(session_id, None)

    def total_bytes(self) -> int:
        """Resident cache bytes across every registered session."""
        return sum(entry.cache.total_bytes() for entry in self._caches.values())

    def per_session_bytes(self) -> dict[str, int]:
        return {
            session_id: entry.cache.total_bytes()
            for session_id, entry in self._caches.items()
        }

    def enforce(self) -> int:
        """Evict until every budget holds; the number of entries evicted.

        Per-session budgets are enforced first (each cache evicts its own LRU
        entries), then the global budget evicts the globally coldest entry
        across all sessions until the combined resident set fits.
        """
        evicted = 0
        for entry in self._caches.values():
            if entry.budget_bytes <= 0:
                continue
            while entry.cache.total_bytes() > entry.budget_bytes:
                key = entry.cache.evict_lru()
                if key is None:
                    break
                self.eviction_log.append((entry.session_id, key))
                evicted += 1
        if self.global_budget_bytes > 0:
            while self.total_bytes() > self.global_budget_bytes:
                victim = None
                victim_stamp = None
                for entry in self._caches.values():
                    oldest = entry.cache.oldest_entry()
                    if oldest is None:
                        continue
                    if victim_stamp is None or oldest[0] < victim_stamp:
                        victim_stamp = oldest[0]
                        victim = entry
                if victim is None:
                    break
                key = victim.cache.evict_lru()
                self.eviction_log.append((victim.session_id, key))
                evicted += 1
        return evicted

    def stats(self) -> dict[str, dict[str, float]]:
        """Per-session cache stats (including ``budget_evictions``) + bytes."""
        out: dict[str, dict[str, float]] = {}
        for session_id, entry in self._caches.items():
            stats = entry.cache.stats.as_dict()
            stats["resident_bytes"] = float(entry.cache.total_bytes())
            stats["budget_bytes"] = float(entry.budget_bytes)
            out[session_id] = stats
        return out
