"""RGB-D sequences: ground-truth frames rendered from a synthetic scene.

A sequence bundles the scene, the camera intrinsics and the ground-truth
trajectory, and lazily renders the RGB-D observation of each frame using the
same rasterizer the SLAM pipeline uses for its map.  Optional sensor noise
(image noise, multiplicative depth noise, depth dropout) makes the tracking
and mapping problems non-trivial.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.scene import SyntheticScene
from repro.engine import default_engine
from repro.gaussians.camera import Camera
from repro.gaussians.se3 import SE3
from repro.utils.random import default_rng, derive_rng


@dataclass(frozen=True)
class RGBDFrame:
    """One observation: colour image, depth map and ground-truth pose."""

    index: int
    image: np.ndarray  # (H, W, 3) in [0, 1]
    depth: np.ndarray  # (H, W) metres; 0 where invalid
    camera: Camera
    gt_pose_cw: SE3
    timestamp: float = 0.0

    @property
    def resolution(self) -> tuple[int, int]:
        return self.camera.resolution


@dataclass
class SensorNoise:
    """Sensor noise model applied to rendered ground-truth observations."""

    image_std: float = 0.01
    depth_std_fraction: float = 0.01
    depth_dropout: float = 0.0

    def apply(
        self, image: np.ndarray, depth: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        noisy_image = image
        noisy_depth = depth
        if self.image_std > 0:
            noisy_image = np.clip(image + rng.normal(0.0, self.image_std, image.shape), 0.0, 1.0)
        if self.depth_std_fraction > 0:
            noisy_depth = depth * (1.0 + rng.normal(0.0, self.depth_std_fraction, depth.shape))
            noisy_depth = np.maximum(noisy_depth, 0.0)
        if self.depth_dropout > 0:
            dropout = rng.random(depth.shape) < self.depth_dropout
            noisy_depth = np.where(dropout, 0.0, noisy_depth)
        return noisy_image, noisy_depth


@dataclass
class RGBDSequence:
    """A full synthetic RGB-D sequence with lazy, cached frame rendering."""

    name: str
    scene: SyntheticScene
    camera: Camera
    gt_trajectory: list[SE3]
    noise: SensorNoise = field(default_factory=SensorNoise)
    fps: float = 30.0
    seed: int = 0
    _frame_cache: dict[int, RGBDFrame] = field(default_factory=dict, repr=False)

    def __len__(self) -> int:
        return len(self.gt_trajectory)

    def __getitem__(self, index: int) -> RGBDFrame:
        return self.frame(index)

    def __iter__(self):
        for index in range(len(self)):
            yield self.frame(index)

    def frame(self, index: int) -> RGBDFrame:
        """Render (or fetch from cache) frame ``index``."""
        if index < 0 or index >= len(self):
            raise IndexError(f"frame index {index} out of range [0, {len(self)})")
        if index not in self._frame_cache:
            self._frame_cache[index] = self._render_frame(index)
        return self._frame_cache[index]

    def ground_truth_poses(self) -> list[SE3]:
        """Return the full ground-truth world-to-camera trajectory."""
        return list(self.gt_trajectory)

    def clear_cache(self) -> None:
        """Drop all cached frames (frees memory between experiments)."""
        self._frame_cache.clear()

    def _render_frame(self, index: int) -> RGBDFrame:
        pose = self.gt_trajectory[index]
        result = default_engine().render(self.scene.cloud, self.camera, pose)
        rng = derive_rng(default_rng(self.seed), "frame", index)
        image, depth = self.noise.apply(result.image, result.depth, rng)
        return RGBDFrame(
            index=index,
            image=image,
            depth=depth,
            camera=self.camera,
            gt_pose_cw=pose,
            timestamp=index / self.fps,
        )
