"""Synthetic RGB-D SLAM datasets.

The paper evaluates on TUM-RGBD, Replica, ScanNet and ScanNet++.  Those
datasets cannot be redistributed here, so this package generates procedural
indoor scenes (rooms with textured walls and ellipsoidal objects, themselves
represented as ground-truth Gaussian clouds) and smooth camera trajectories,
then renders ground-truth RGB-D frames with the same rasterizer used by the
SLAM pipeline.  Each paper dataset maps to a registry entry that mimics its
resolution, sequence length and scene complexity at laptop scale.
"""

from repro.datasets.registry import (
    DATASET_REGISTRY,
    DatasetConfig,
    available_datasets,
    dataset_scenes,
    make_sequence,
)
from repro.datasets.rgbd import RGBDFrame, RGBDSequence
from repro.datasets.scene import SceneConfig, SyntheticScene
from repro.datasets.trajectory import (
    TrajectoryConfig,
    generate_trajectory,
    scenario_trajectory,
)

__all__ = [
    "DATASET_REGISTRY",
    "DatasetConfig",
    "RGBDFrame",
    "RGBDSequence",
    "SceneConfig",
    "SyntheticScene",
    "TrajectoryConfig",
    "available_datasets",
    "dataset_scenes",
    "generate_trajectory",
    "make_sequence",
    "scenario_trajectory",
]
