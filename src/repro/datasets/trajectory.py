"""Smooth camera trajectories for synthetic SLAM sequences.

Trajectories orbit the room interior with slow sinusoidal perturbations and a
drifting look-at target, so consecutive frames overlap heavily - the property
behind the paper's Observation 5 (non-keyframe redundancy) and Observation 6
(inter-iteration workload similarity).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gaussians.se3 import SE3
from repro.utils.random import default_rng


@dataclass(frozen=True)
class TrajectoryConfig:
    """Parameters of the orbiting trajectory generator."""

    n_frames: int = 40
    radius: float = 1.2
    height: float = 0.2
    angular_velocity: float = 0.045  # radians of orbit per frame
    wobble_amplitude: float = 0.05
    target_drift: float = 0.25
    noise_std: float = 0.0
    seed: int = 0


def generate_trajectory(
    config: TrajectoryConfig, room_size: tuple[float, float, float] = (4.0, 3.0, 2.5)
) -> list[SE3]:
    """Generate ``n_frames`` world-to-camera poses inside a room of ``room_size``.

    The camera orbits the room centre at ``radius`` (clamped to stay inside the
    room), wobbles vertically, and looks at a slowly drifting point near the
    centre.  The per-frame motion is fixed by ``angular_velocity`` so that
    shorter sequences do not become artificially fast.  Optional ``noise_std``
    adds per-frame positional jitter, useful for stress-testing tracking
    robustness.
    """
    if config.n_frames <= 0:
        raise ValueError(f"n_frames must be positive, got {config.n_frames}")
    rng = default_rng(config.seed)
    half = np.asarray(room_size) / 2.0
    max_radius = 0.75 * min(half[0], half[1])
    radius = min(config.radius, max_radius)

    angles = np.arange(config.n_frames) * config.angular_velocity
    poses: list[SE3] = []
    for angle in angles:
        eye = np.array(
            [
                radius * np.cos(angle),
                radius * np.sin(angle),
                config.height + config.wobble_amplitude * np.sin(3.0 * angle),
            ]
        )
        if config.noise_std > 0:
            eye = eye + rng.normal(0.0, config.noise_std, size=3)
        target = np.array(
            [
                config.target_drift * np.sin(1.3 * angle + 0.4),
                config.target_drift * np.cos(0.9 * angle),
                -0.1 + 0.15 * np.sin(0.8 * angle),
            ]
        )
        poses.append(SE3.look_at(eye, target, up=(0.0, 0.0, 1.0)))
    return poses


def scenario_trajectory(
    n_views: int,
    *,
    aggressive: bool = False,
    distance: float = 2.0,
    seed: int = 0,
) -> list[SE3]:
    """Deterministic multi-view poses around the origin for test scenarios.

    Unlike :func:`generate_trajectory` (which orbits a *room* interior for
    full SLAM sequences), these poses orbit the origin-centred test clouds of
    :mod:`repro.testing.scenarios` at roughly ``distance``, always looking at
    (or near) the scene centre, so every view keeps the scenario content in
    frame.  ``aggressive=True`` produces the adversarial variant: large
    inter-frame rotations plus positional jitter, the "fast erratic camera"
    workload that stresses projection/tiling churn between consecutive views.
    The same ``(n_views, aggressive, distance, seed)`` always yields bitwise
    identical poses — the property every scenario input must have.
    """
    if n_views <= 0:
        raise ValueError(f"n_views must be positive, got {n_views}")
    rng = default_rng(seed)
    step = 0.35 if aggressive else 0.08  # radians of orbit per view
    poses: list[SE3] = []
    for k in range(n_views):
        angle = k * step
        eye = np.array(
            [
                distance * np.sin(angle),
                0.35 * np.sin(2.1 * angle),
                -distance * np.cos(angle),
            ]
        )
        if aggressive:
            eye = eye + rng.normal(0.0, 0.08, size=3)
        target = (
            rng.normal(0.0, 0.05, size=3)
            if aggressive
            else np.array([0.02 * np.sin(1.7 * angle), 0.015 * np.cos(1.3 * angle), 0.0])
        )
        poses.append(SE3.look_at(eye, target, up=(0.0, 1.0, 0.0)))
    return poses


def pose_velocity(poses: list[SE3]) -> np.ndarray:
    """Return per-step (translation, rotation) motion magnitudes of a trajectory.

    Useful for verifying smoothness and for keyframe-policy tests.
    """
    if len(poses) < 2:
        return np.zeros((0, 2))
    velocities = []
    for prev, curr in zip(poses[:-1], poses[1:]):
        trans, angle = prev.distance(curr)
        velocities.append((trans, angle))
    return np.asarray(velocities)
