"""Dataset registry mapping the paper's benchmarks to synthetic equivalents.

Each entry mimics one of the paper's evaluation datasets (Tab. 3): the image
aspect ratio and the *relative* resolution ordering (TUM < Replica < ScanNet <
ScanNet++), the sequence scale, and the scene complexity, all shrunk to sizes
a pure-Python rasterizer can handle.  The named scenes of each dataset map to
different generator seeds so "Rm0" and "Off3" really are different rooms.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.datasets.rgbd import RGBDSequence, SensorNoise
from repro.datasets.scene import SceneConfig, SyntheticScene
from repro.datasets.trajectory import TrajectoryConfig, generate_trajectory
from repro.gaussians.camera import Camera


@dataclass(frozen=True)
class DatasetConfig:
    """Configuration template for one synthetic dataset family."""

    name: str
    paper_resolution: tuple[int, int]  # (height, width) of the real dataset
    resolution: tuple[int, int]  # (height, width) used in this reproduction
    scenes: tuple[str, ...]
    n_frames: int
    n_objects: int
    room_size: tuple[float, float, float]
    trajectory_radius: float
    wall_density: float
    image_noise: float
    depth_noise: float

    def scaled(self, resolution_scale: float = 1.0, n_frames: int | None = None) -> "DatasetConfig":
        """Return a copy with scaled resolution and/or frame count (for fast tests)."""
        height = max(16, int(round(self.resolution[0] * resolution_scale)))
        width = max(16, int(round(self.resolution[1] * resolution_scale)))
        return replace(
            self,
            resolution=(height, width),
            n_frames=n_frames if n_frames is not None else self.n_frames,
        )


DATASET_REGISTRY: dict[str, DatasetConfig] = {
    "tum": DatasetConfig(
        name="tum",
        paper_resolution=(480, 640),
        resolution=(48, 64),
        scenes=("fr1_desk", "fr2_xyz", "fr3_office"),
        n_frames=40,
        n_objects=5,
        room_size=(3.5, 2.8, 2.4),
        trajectory_radius=1.0,
        wall_density=55.0,
        image_noise=0.010,
        depth_noise=0.006,
    ),
    "replica": DatasetConfig(
        name="replica",
        paper_resolution=(680, 1200),
        resolution=(52, 92),
        scenes=("room0", "room1", "room2", "office0", "office1", "office2", "office3"),
        n_frames=40,
        n_objects=6,
        room_size=(4.2, 3.2, 2.6),
        trajectory_radius=1.2,
        wall_density=60.0,
        image_noise=0.006,
        depth_noise=0.004,
    ),
    "scannet": DatasetConfig(
        name="scannet",
        paper_resolution=(968, 1296),
        resolution=(60, 80),
        scenes=(
            "scene0000",
            "scene0059",
            "scene0106",
            "scene0169",
            "scene0181",
            "scene0207",
        ),
        n_frames=40,
        n_objects=8,
        room_size=(5.0, 4.0, 2.7),
        trajectory_radius=1.5,
        wall_density=65.0,
        image_noise=0.012,
        depth_noise=0.010,
    ),
    "scannetpp": DatasetConfig(
        name="scannetpp",
        paper_resolution=(1160, 1752),
        resolution=(64, 96),
        scenes=("s1", "s2"),
        n_frames=40,
        n_objects=9,
        room_size=(5.5, 4.5, 2.8),
        trajectory_radius=1.6,
        wall_density=70.0,
        image_noise=0.008,
        depth_noise=0.005,
    ),
}


def available_datasets() -> list[str]:
    """Names of the registered dataset families."""
    return sorted(DATASET_REGISTRY)


def dataset_scenes(name: str) -> tuple[str, ...]:
    """Scene identifiers of a dataset family (mirrors Tab. 3)."""
    return _get_config(name).scenes


def make_sequence(
    dataset: str,
    scene: str | None = None,
    n_frames: int | None = None,
    resolution_scale: float = 1.0,
    seed: int | None = None,
) -> RGBDSequence:
    """Build an :class:`RGBDSequence` for ``dataset``/``scene``.

    Parameters
    ----------
    dataset:
        One of :func:`available_datasets` (``tum``, ``replica``, ``scannet``,
        ``scannetpp``).
    scene:
        A scene name from :func:`dataset_scenes`; defaults to the first scene.
    n_frames, resolution_scale:
        Overrides for quick experiments and unit tests.
    seed:
        Overrides the deterministic per-scene seed.
    """
    config = _get_config(dataset)
    if scene is None:
        scene = config.scenes[0]
    if scene not in config.scenes:
        raise ValueError(
            f"unknown scene '{scene}' for dataset '{dataset}'; options: {config.scenes}"
        )
    config = config.scaled(resolution_scale=resolution_scale, n_frames=n_frames)
    scene_seed = seed if seed is not None else _scene_seed(dataset, scene)

    scene_config = SceneConfig(
        room_size=config.room_size,
        wall_samples_per_m2=config.wall_density,
        n_objects=config.n_objects,
        seed=scene_seed,
    )
    synthetic_scene = SyntheticScene.generate(scene_config)
    height, width = config.resolution
    camera = Camera.from_fov(width, height, fov_x_degrees=72.0)
    trajectory = generate_trajectory(
        TrajectoryConfig(
            n_frames=config.n_frames,
            radius=config.trajectory_radius,
            seed=scene_seed + 1,
        ),
        room_size=config.room_size,
    )
    noise = SensorNoise(
        image_std=config.image_noise, depth_std_fraction=config.depth_noise
    )
    return RGBDSequence(
        name=f"{dataset}/{scene}",
        scene=synthetic_scene,
        camera=camera,
        gt_trajectory=trajectory,
        noise=noise,
        seed=scene_seed,
    )


def _get_config(name: str) -> DatasetConfig:
    if name not in DATASET_REGISTRY:
        raise ValueError(
            f"unknown dataset '{name}'; available: {available_datasets()}"
        )
    return DATASET_REGISTRY[name]


def _scene_seed(dataset: str, scene: str) -> int:
    """Deterministic seed per (dataset, scene) pair."""
    config = DATASET_REGISTRY[dataset]
    base = sorted(DATASET_REGISTRY).index(dataset) * 1000
    return base + config.scenes.index(scene) * 17 + 11
