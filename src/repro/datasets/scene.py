"""Procedural indoor scenes represented as ground-truth Gaussian clouds.

A scene is a rectangular room whose walls, floor and ceiling are sampled into
small textured Gaussians, plus a configurable number of ellipsoidal objects
("furniture") placed inside the room.  Representing the ground truth itself as
a Gaussian cloud means the rendered RGB-D observations are exactly realisable
by the SLAM map, so reconstruction error measures the *pipeline*, not a
representation gap - the same role the paper's photorealistic datasets play.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gaussians.gaussian_model import GaussianCloud
from repro.utils.random import default_rng


@dataclass(frozen=True)
class SceneConfig:
    """Parameters controlling the procedural scene generator."""

    room_size: tuple[float, float, float] = (4.0, 3.0, 2.5)
    wall_samples_per_m2: float = 60.0
    n_objects: int = 6
    object_scale_range: tuple[float, float] = (0.15, 0.45)
    texture_frequency: float = 2.5
    texture_contrast: float = 0.35
    gaussian_scale: float = 0.06
    seed: int = 0


@dataclass
class SyntheticScene:
    """A generated scene: the ground-truth Gaussian cloud plus metadata."""

    config: SceneConfig
    cloud: GaussianCloud
    object_centres: np.ndarray = field(default_factory=lambda: np.zeros((0, 3)))

    @property
    def room_size(self) -> tuple[float, float, float]:
        return self.config.room_size

    @property
    def centre(self) -> np.ndarray:
        """Geometric centre of the room (the origin by construction)."""
        return np.zeros(3)

    @staticmethod
    def generate(config: SceneConfig | None = None) -> "SyntheticScene":
        """Build a scene from ``config`` (deterministic for a given seed)."""
        config = config or SceneConfig()
        rng = default_rng(config.seed)
        points: list[np.ndarray] = []
        colors: list[np.ndarray] = []
        scales: list[np.ndarray] = []

        wall_pts, wall_cols = _sample_room_shell(config, rng)
        points.append(wall_pts)
        colors.append(wall_cols)
        scales.append(np.full(len(wall_pts), config.gaussian_scale))

        centres = _place_objects(config, rng)
        for obj_idx, centre in enumerate(centres):
            obj_pts, obj_cols, obj_scales = _sample_object(config, rng, centre, obj_idx)
            points.append(obj_pts)
            colors.append(obj_cols)
            scales.append(obj_scales)

        all_points = np.concatenate(points, axis=0)
        all_colors = np.concatenate(colors, axis=0)
        all_scales = np.concatenate(scales, axis=0)
        cloud = GaussianCloud.from_points(all_points, all_colors, scale=all_scales, opacity=0.85)
        return SyntheticScene(config=config, cloud=cloud, object_centres=centres)


# -- internal generators -----------------------------------------------------
def _texture(points: np.ndarray, base: np.ndarray, config: SceneConfig, phase: float) -> np.ndarray:
    """Procedural colour texture: low-frequency sinusoids plus a checker pattern.

    Texture matters for the reproduction because the paper's Observation 3
    finds that high-gradient Gaussians cluster on object contours and textured
    regions; an untextured scene would make pruning look artificially easy.
    """
    freq = config.texture_frequency
    u = points @ np.array([1.0, 0.7, 0.3])
    v = points @ np.array([-0.4, 1.0, 0.6])
    wave = 0.5 * np.sin(freq * u * np.pi + phase) + 0.5 * np.cos(freq * v * np.pi - phase)
    checker = np.sign(np.sin(freq * 2.0 * u * np.pi) * np.sin(freq * 2.0 * v * np.pi))
    modulation = config.texture_contrast * (0.7 * wave + 0.3 * checker)
    colors = base[None, :] * (1.0 + modulation[:, None])
    return np.clip(colors, 0.02, 0.98)


def _sample_room_shell(config: SceneConfig, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """Sample Gaussians on the six faces of the room box."""
    half = np.asarray(config.room_size) / 2.0
    faces = []
    base_colors = [
        np.array([0.75, 0.72, 0.68]),  # walls: warm grey
        np.array([0.72, 0.75, 0.70]),
        np.array([0.70, 0.70, 0.78]),
        np.array([0.76, 0.70, 0.70]),
        np.array([0.55, 0.45, 0.35]),  # floor: wood
        np.array([0.85, 0.85, 0.88]),  # ceiling
    ]
    # Axis-aligned faces: +-x, +-y walls, -z floor, +z ceiling.
    specs = [
        (0, +1), (0, -1), (1, +1), (1, -1), (2, -1), (2, +1),
    ]
    all_pts, all_cols = [], []
    for face_idx, (axis, sign) in enumerate(specs):
        other = [a for a in range(3) if a != axis]
        extent = half[other[0]] * 2 * half[other[1]] * 2
        n_samples = max(24, int(extent * config.wall_samples_per_m2))
        uv = rng.uniform(-1.0, 1.0, size=(n_samples, 2))
        pts = np.zeros((n_samples, 3))
        pts[:, other[0]] = uv[:, 0] * half[other[0]]
        pts[:, other[1]] = uv[:, 1] * half[other[1]]
        pts[:, axis] = sign * half[axis]
        cols = _texture(pts, base_colors[face_idx], config, phase=face_idx * 0.9)
        all_pts.append(pts)
        all_cols.append(cols)
        faces.append(n_samples)
    return np.concatenate(all_pts, axis=0), np.concatenate(all_cols, axis=0)


def _place_objects(config: SceneConfig, rng: np.random.Generator) -> np.ndarray:
    """Choose object centres keeping them inside the room and off the walls.

    Objects are confined to a central core of the room so they never sit on
    the camera orbit (which circles the room at roughly 60-80% of the half
    extent); a camera starting inside an object would observe a degenerate
    centimetre-scale depth map and poison the SLAM initialisation.
    """
    if config.n_objects <= 0:
        return np.zeros((0, 3))
    half = np.asarray(config.room_size) / 2.0
    margin = config.object_scale_range[1] + 0.2
    usable = np.maximum(0.45 * (half - margin), 0.1)
    centres = rng.uniform(-1.0, 1.0, size=(config.n_objects, 3)) * usable
    # Keep objects in the lower half of the room, like furniture.
    centres[:, 2] = rng.uniform(-half[2] * 0.6, 0.1 * half[2], size=config.n_objects)
    return centres


def _sample_object(
    config: SceneConfig, rng: np.random.Generator, centre: np.ndarray, obj_idx: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample Gaussians on the surface of one ellipsoidal object."""
    radius = rng.uniform(*config.object_scale_range)
    axes = radius * rng.uniform(0.6, 1.4, size=3)
    n_samples = max(30, int(350 * radius))
    directions = rng.normal(size=(n_samples, 3))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    pts = centre[None, :] + directions * axes[None, :]
    base = rng.uniform(0.15, 0.9, size=3)
    cols = _texture(pts, base, config, phase=1.7 + obj_idx)
    scales = np.full(n_samples, max(config.gaussian_scale, radius * 0.18))
    return pts, cols, scales
