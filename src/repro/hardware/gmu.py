"""Gradient Merging Unit (GMU): Benes routing + bypassed reduction trees.

The GMU replaces serialised atomic adds with on-chip aggregation (Sec. 5.3):
a Benes network clusters incoming pixel-level gradients by Gaussian, a
reduction tree with bypass links merges each cluster at ``inputs_per_cycle``
operands per cycle, and a stage queue/buffer accumulates tile-level partial
sums into Gaussian-level gradients.  The model charges throughput-limited
cycles for intra-tile merging plus a small per-(tile, Gaussian) cost for the
stage-buffer accumulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.hardware.config import RTGSArchitectureConfig
from repro.slam.records import WorkloadSnapshot


@dataclass(frozen=True)
class BenesNetwork:
    """An N-input Benes permutation network (used to cluster gradients).

    The network is rearrangeably non-blocking, so any input permutation can be
    routed; the model only needs its stage count (latency) and switch count
    (area/energy bookkeeping), but the topology builder is exposed because the
    unit tests verify the classic ``2 log2(N) - 1`` stage structure.
    """

    n_inputs: int = 16

    def __post_init__(self) -> None:
        n = self.n_inputs
        if n < 2 or n & (n - 1):
            raise ValueError(f"n_inputs must be a power of two >= 2, got {n}")

    @property
    def n_stages(self) -> int:
        """Number of switching stages: ``2 log2(N) - 1``."""
        return 2 * int(np.log2(self.n_inputs)) - 1

    @property
    def n_switches(self) -> int:
        """Total 2x2 switches: ``N/2`` per stage."""
        return self.n_stages * self.n_inputs // 2

    def topology(self) -> nx.DiGraph:
        """Build the stage graph (nodes are (stage, port), edges are wires)."""
        graph = nx.DiGraph()
        n = self.n_inputs
        for stage in range(self.n_stages + 1):
            for port in range(n):
                graph.add_node((stage, port))
        half = n // 2
        for stage in range(self.n_stages):
            # Butterfly-style connectivity: straight edge plus an exchange edge
            # whose span shrinks then grows across the recursive halves.
            distance = max(1, half >> min(stage, self.n_stages - 1 - stage))
            for port in range(n):
                graph.add_edge((stage, port), (stage + 1, port))
                graph.add_edge((stage, port), (stage + 1, port ^ distance))
        return graph

    def is_routable(self) -> bool:
        """Every input can reach every output (rearrangeable non-blocking check)."""
        graph = self.topology()
        for source in range(self.n_inputs):
            reachable = nx.descendants(graph, (0, source))
            outputs = {(self.n_stages, port) for port in range(self.n_inputs)}
            if not outputs.issubset(reachable):
                return False
        return True


@dataclass
class GradientMergingUnit:
    """Cycle model of intra-tile and inter-tile gradient aggregation."""

    config: RTGSArchitectureConfig = None
    n_gmus: int | None = None

    def __post_init__(self) -> None:
        if self.config is None:
            self.config = RTGSArchitectureConfig()
        if self.n_gmus is None:
            self.n_gmus = self.config.n_gmus
        self.network = BenesNetwork(self.config.n_rendering_engines)

    def tile_merging_cycles(self, update_counts: np.ndarray) -> float:
        """Cycles to merge one tile's pixel-level updates into tile-level gradients."""
        counts = np.asarray(update_counts, dtype=np.float64)
        if counts.size == 0:
            return 0.0
        total_updates = float(counts.sum())
        # Throughput: the reduction tree consumes ``inputs_per_cycle`` operands
        # per cycle per GMU group; the Benes network and tree depth add a fixed
        # pipeline latency per tile.
        throughput_cycles = total_updates / self.config.gmu_inputs_per_cycle
        latency = self.network.n_stages + self.config.gmu_tree_latency
        # Stage-buffer accumulation: one read-modify-write per distinct Gaussian.
        stage_buffer_cycles = float(counts.size)
        return throughput_cycles + latency + stage_buffer_cycles

    def merging_cycles(self, snapshot: WorkloadSnapshot) -> float:
        """Total gradient-merging cycles of one backward pass across all GMUs."""
        per_tile = [
            self.tile_merging_cycles(counts) for counts in snapshot.per_tile_update_counts
        ]
        if not per_tile:
            return 0.0
        # Tiles are distributed across the GMU groups; merging overlaps with
        # rendering backpropagation, so the groups work in parallel.
        per_gmu = np.zeros(max(self.n_gmus, 1))
        for index, cycles in enumerate(sorted(per_tile, reverse=True)):
            per_gmu[index % per_gmu.size] += cycles
        return float(per_gmu.max())
