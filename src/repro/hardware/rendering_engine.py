"""Rendering Engine (RE) cycle model: Rendering Cores, RBCs and the R&B Buffer.

Each RE processes one 4x4-pixel subtile.  Its 8 Rendering Cores each own two
pixels: every pixel has a dedicated alpha-computing unit (12-cycle latency)
while one alpha-blending unit (3 cycles) is shared by the pair, so a lane's
forward time is governed by the *sum* of its two pixels' fragment counts -
which is exactly why the WSU pairs heavy pixels with light ones.

For Step 4 Rendering BP, the Rendering Backpropagation Core recomputes the
alpha gradient in 20 cycles unless the R&B Buffer supplies the forward-pass
intermediates, which cuts it to 4 cycles and balances the pipeline against the
8-cycle 2D covariance/position gradient unit (Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.config import RTGSArchitectureConfig


@dataclass(frozen=True)
class RBBuffer:
    """Rendering & Backpropagation reuse buffer (double-buffered, chunked).

    The buffer prefetches chunks of forward intermediates (``chunk_size``
    values of ``\\hat{C}_{P,k}`` per pixel) while the current chunk is being
    consumed, so reuse only breaks down if a chunk is larger than the buffer
    half reserved for it.
    """

    capacity_kb: float = 16.0
    chunk_size: int = 4
    bytes_per_entry: int = 16  # colour contribution + alpha + transmittance (fp32)

    def chunk_bytes(self, pixels_per_subtile: int) -> int:
        """Bytes needed to hold one chunk for every pixel of a subtile."""
        return self.chunk_size * self.bytes_per_entry * pixels_per_subtile

    def supports_reuse(self, pixels_per_subtile: int) -> bool:
        """True when double buffering fits in the capacity (it does for 4x4 subtiles)."""
        return 2 * self.chunk_bytes(pixels_per_subtile) <= self.capacity_kb * 1024

    def alpha_grad_cycles(
        self, config: RTGSArchitectureConfig, pixels_per_subtile: int | None = None
    ) -> int:
        """Effective alpha-gradient latency given the reuse capability."""
        pixels = pixels_per_subtile or config.pixels_per_subtile
        if self.supports_reuse(pixels):
            return config.alpha_grad_cycles_reuse
        return config.alpha_grad_cycles_baseline


@dataclass
class RenderingEngine:
    """Cycle model of one RE processing one subtile."""

    config: RTGSArchitectureConfig
    use_rb_buffer: bool = True
    use_pipeline_balancing: bool = True
    rb_buffer: RBBuffer | None = None

    def __post_init__(self) -> None:
        if self.rb_buffer is None:
            self.rb_buffer = RBBuffer(capacity_kb=self.config.rb_buffer_kb)

    # -- forward -------------------------------------------------------------
    def forward_cycles(self, pixel_fragments: np.ndarray, pairing: np.ndarray | None = None) -> int:
        """Step 3 cycles for a subtile given per-pixel fragment counts.

        ``pairing`` is an optional ``(n_lanes, 2)`` array of pixel indices
        assigning two pixels to each RC lane (produced by the WSU); without it
        pixels are paired in storage order.
        """
        lane_loads = self._lane_loads(pixel_fragments, pairing)
        if lane_loads.size == 0:
            return 0
        if self.use_pipeline_balancing:
            # One fragment per cycle steady state after the pipeline fills.
            per_lane = lane_loads + self.config.alpha_compute_cycles + self.config.alpha_blend_cycles
        else:
            # Unbalanced resources: blending serialises behind alpha computing.
            interval = 1 + self.config.alpha_blend_cycles / max(self.config.alpha_compute_cycles, 1)
            per_lane = lane_loads * interval + self.config.alpha_compute_cycles
        return int(np.ceil(per_lane.max()))

    # -- backward --------------------------------------------------------------
    def backward_cycles(self, pixel_fragments: np.ndarray, pairing: np.ndarray | None = None) -> int:
        """Step 4 (pixel-level gradient) cycles for a subtile."""
        lane_loads = self._lane_loads(pixel_fragments, pairing)
        if lane_loads.size == 0:
            return 0
        if self.use_rb_buffer:
            alpha_grad = self.rb_buffer.alpha_grad_cycles(self.config)
        else:
            alpha_grad = self.config.alpha_grad_cycles_baseline
        grad_2d = self.config.grad_2d_cycles
        if self.use_pipeline_balancing:
            # The initiation interval is set by the slower of the two units
            # relative to the per-fragment budget (Fig. 8): with reuse both fit
            # under the 8-cycle 2D-gradient stage, giving ~1 fragment/cycle.
            interval = max(1.0, alpha_grad / grad_2d)
        else:
            interval = (alpha_grad + grad_2d) / grad_2d
        per_lane = lane_loads * interval + alpha_grad + grad_2d
        return int(np.ceil(per_lane.max()))

    def subtile_cycles(
        self,
        pixel_fragments: np.ndarray,
        pairing: np.ndarray | None = None,
        include_backward: bool = True,
    ) -> int:
        """Total RE cycles for one subtile (forward plus optional backward)."""
        cycles = self.forward_cycles(pixel_fragments, pairing)
        if include_backward:
            cycles += self.backward_cycles(pixel_fragments, pairing)
        return cycles

    # -- internals ---------------------------------------------------------------
    def _lane_loads(self, pixel_fragments: np.ndarray, pairing: np.ndarray | None) -> np.ndarray:
        fragments = np.asarray(pixel_fragments, dtype=np.int64).ravel()
        if fragments.size == 0 or fragments.sum() == 0:
            return np.zeros(0)
        expected = self.config.pixels_per_subtile
        if fragments.size < expected:
            fragments = np.pad(fragments, (0, expected - fragments.size))
        if pairing is None:
            pairing = np.arange(expected).reshape(-1, 2)
        pairing = np.asarray(pairing, dtype=int)
        return fragments[pairing].sum(axis=1).astype(np.float64)
