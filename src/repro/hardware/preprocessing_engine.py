"""Preprocessing Engines (PE), Merging Tree and Pose Computing Unit (Sec. 5.4).

Step 5 Preprocessing BP converts Gaussian-level 2D gradients into 3D Gaussian
gradients (mapping) and, during tracking, additionally reduces the
per-Gaussian camera-pose gradients through a Merging Tree into the final pose
gradient consumed by the Pose Computing Unit.  The PEs process
``gaussians_per_pe`` Gaussians in parallel each; the model is throughput
limited with a small tree/update latency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.config import RTGSArchitectureConfig
from repro.slam.records import WorkloadSnapshot


@dataclass
class PreprocessingEngine:
    """Throughput model of the PE array."""

    config: RTGSArchitectureConfig = None

    def __post_init__(self) -> None:
        if self.config is None:
            self.config = RTGSArchitectureConfig()

    @property
    def gaussians_per_cycle(self) -> float:
        """How many Gaussians the PE array retires per ``pe_gaussian_cycles`` window."""
        return self.config.n_preprocessing_engines * self.config.gaussians_per_pe

    def preprocessing_bp_cycles(self, snapshot: WorkloadSnapshot) -> float:
        """Cycles for Step 5 over all Gaussians that received gradients."""
        n_gaussians = snapshot.total_tile_level_updates
        if n_gaussians == 0:
            return 0.0
        batches = np.ceil(n_gaussians / self.gaussians_per_cycle)
        cycles = batches * self.config.pe_gaussian_cycles
        if snapshot.stage == "tracking":
            cycles += self.pose_merge_cycles(n_gaussians)
        return float(cycles)

    def pose_merge_cycles(self, n_gaussians: int) -> float:
        """Merging Tree + Pose Computing Unit cycles for the pose gradient."""
        if n_gaussians <= 0:
            return 0.0
        tree_depth = np.ceil(np.log2(max(self.config.n_preprocessing_engines, 2)))
        batches = np.ceil(
            n_gaussians / (self.config.n_preprocessing_engines * self.config.gaussians_per_pe)
        )
        return float(batches + tree_depth + self.config.pose_merge_tree_latency)
