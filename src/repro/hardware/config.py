"""Hardware configuration tables (Tab. 4 and Tab. 5 of the paper).

``RTGSArchitectureConfig`` captures the plug-in's compute/memory provisioning
and the per-unit cycle latencies quoted in Sec. 5 (12-cycle alpha computing,
3-cycle alpha blending, 20-cycle alpha-gradient computation reduced to 4 with
the R&B Buffer, 8-cycle 2D covariance/position gradients).  ``DEVICE_SPECS``
reproduces the device comparison table, including the DeepScaleTool-scaled
12 nm and 8 nm RTGS variants.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceSpec:
    """One row of the paper's device-specification table (Tab. 5)."""

    name: str
    technology_nm: int
    sram_kb: float
    n_cores: int
    core_description: str
    area_mm2: float
    power_w: float
    frequency_ghz: float
    # Fraction of peak core throughput these memory-bound SLAM kernels sustain;
    # big discrete GPUs are harder to fill with small per-tile kernels.
    kernel_utilization: float = 0.35


DEVICE_SPECS: dict[str, DeviceSpec] = {
    "onx": DeviceSpec(
        name="ONX",
        technology_nm=8,
        sram_kb=4096.0,
        n_cores=512,
        core_description="512 CUDA cores",
        area_mm2=450.0,
        power_w=15.0,
        frequency_ghz=0.918,
    ),
    "rtx3090": DeviceSpec(
        name="RTX 3090",
        technology_nm=8,
        sram_kb=80.25 * 1024,
        n_cores=5248,
        core_description="5248 CUDA cores",
        area_mm2=628.0,
        power_w=352.0,
        frequency_ghz=1.7,
        kernel_utilization=0.06,
    ),
    "gauspu": DeviceSpec(
        name="GauSPU",
        technology_nm=12,
        sram_kb=560.0,
        n_cores=160,
        core_description="128 REs / 32 BEs",
        area_mm2=30.0,
        power_w=9.4,
        frequency_ghz=0.5,
    ),
    "rtgs": DeviceSpec(
        name="RTGS",
        technology_nm=28,
        sram_kb=197.0,
        n_cores=32,
        core_description="16 REs / 16 PEs",
        area_mm2=28.41,
        power_w=8.11,
        frequency_ghz=0.5,
    ),
    "rtgs-12nm": DeviceSpec(
        name="RTGS-12nm",
        technology_nm=12,
        sram_kb=197.0,
        n_cores=32,
        core_description="16 REs / 16 PEs",
        area_mm2=6.49,
        power_w=4.63,
        frequency_ghz=0.5,
    ),
    "rtgs-8nm": DeviceSpec(
        name="RTGS-8nm",
        technology_nm=8,
        sram_kb=197.0,
        n_cores=32,
        core_description="16 REs / 16 PEs",
        area_mm2=2.40,
        power_w=3.76,
        frequency_ghz=0.5,
    ),
}


@dataclass(frozen=True)
class RTGSArchitectureConfig:
    """The RTGS plug-in provisioning and unit latencies (Tab. 4 + Sec. 5)."""

    # Compute resources.
    n_rendering_engines: int = 16
    rcs_per_re: int = 8
    n_preprocessing_engines: int = 16
    gaussians_per_pe: int = 16
    n_gmus: int = 4
    frequency_hz: float = 500e6

    # Geometry of the parallel compute.
    tile_size: int = 16
    subtile_size: int = 4

    # Unit latencies in cycles (Sec. 5.2-5.4).
    alpha_compute_cycles: int = 12
    alpha_blend_cycles: int = 3
    alpha_grad_cycles_baseline: int = 20
    alpha_grad_cycles_reuse: int = 4
    grad_2d_cycles: int = 8
    pe_gaussian_cycles: int = 6
    pose_merge_tree_latency: int = 8
    gmu_tree_latency: int = 4
    gmu_inputs_per_cycle: int = 4

    # On-chip memory (KB), mirroring Tab. 4.
    gaussian_cache_kb: float = 80.0
    pixel_buffer_kb: float = 24.0
    buffer_2d_kb: float = 20.0
    rb_buffer_kb: float = 16.0
    stage_buffer_kb: float = 16.0
    buffer_3d_kb: float = 10.0
    output_buffer_kb: float = 15.0
    wsu_buffer_kb: float = 16.0
    l2_cache_mb: float = 2.0

    # Physical characteristics (28 nm synthesis, Tab. 4).
    area_mm2: float = 28.41
    power_w: float = 8.11

    @property
    def pixels_per_subtile(self) -> int:
        return self.subtile_size * self.subtile_size

    @property
    def total_sram_kb(self) -> float:
        """Total dedicated SRAM (197 KB in Tab. 4)."""
        return (
            self.gaussian_cache_kb
            + self.pixel_buffer_kb
            + self.buffer_2d_kb
            + self.rb_buffer_kb
            + self.stage_buffer_kb
            + self.buffer_3d_kb
            + self.output_buffer_kb
            + self.wsu_buffer_kb
        )


# Scaling factors relative to 28 nm, in the spirit of DeepScaleTool: area and
# power shrink with the technology node at 0.8 V / 500 MHz.
TECHNOLOGY_SCALING = {
    28: {"area": 1.0, "power": 1.0},
    12: {"area": 6.49 / 28.41, "power": 4.63 / 8.11},
    8: {"area": 2.40 / 28.41, "power": 3.76 / 8.11},
}


def scale_device(spec: DeviceSpec, target_nm: int) -> DeviceSpec:
    """Scale an RTGS-class device spec to another technology node."""
    if spec.technology_nm not in TECHNOLOGY_SCALING or target_nm not in TECHNOLOGY_SCALING:
        raise ValueError(
            f"unsupported technology nodes {spec.technology_nm} -> {target_nm}; "
            f"supported: {sorted(TECHNOLOGY_SCALING)}"
        )
    base = TECHNOLOGY_SCALING[spec.technology_nm]
    target = TECHNOLOGY_SCALING[target_nm]
    return DeviceSpec(
        name=f"{spec.name}-{target_nm}nm",
        technology_nm=target_nm,
        sram_kb=spec.sram_kb,
        n_cores=spec.n_cores,
        core_description=spec.core_description,
        area_mm2=spec.area_mm2 * target["area"] / base["area"],
        power_w=spec.power_w * target["power"] / base["power"],
        frequency_ghz=spec.frequency_ghz,
    )
