"""Workload Scheduling Unit (WSU): pixel pairing + subtile streaming.

The WSU attacks workload imbalance at two levels (Sec. 5.2):

* *pixel level*: within a subtile, pixels with heavy and light fragment counts
  are paired onto the same RC lane, using the completion order recorded in the
  previous iteration (a FIFO of light pixels and a LIFO of heavy pixels) - the
  model reuses the previous iteration's fragment counts the same way, so the
  pairing is slightly stale, exactly like the hardware;
* *subtile level*: subtiles are streamed to whichever RE frees up first rather
  than being statically mapped, which is list scheduling in arrival order.

``schedule`` returns the modelled RE cycles for a whole iteration under a
selectable combination of the two techniques plus the ideal bound, enabling
the Fig. 17(a) ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.hardware.config import RTGSArchitectureConfig
from repro.hardware.rendering_engine import RenderingEngine


class SchedulingMode(str, Enum):
    """Which imbalance-mitigation techniques are active."""

    NONE = "none"
    STREAMING = "streaming"
    PAIRING = "pairing"
    BOTH = "both"
    IDEAL = "ideal"


@dataclass
class WSUResult:
    """Outcome of scheduling one iteration's subtiles onto the REs."""

    total_cycles: int
    per_engine_cycles: np.ndarray
    imbalance: float  # (max - mean) / max over engines
    mode: SchedulingMode


@dataclass
class WorkloadSchedulingUnit:
    """Models the WSU's pairing tables and streaming dispatch."""

    config: RTGSArchitectureConfig
    engine: RenderingEngine | None = None
    _previous_fragments: list[np.ndarray] | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.engine is None:
            self.engine = RenderingEngine(self.config)

    def reset(self) -> None:
        """Forget the previous iteration (start of a new frame)."""
        self._previous_fragments = None

    # -- pixel-level pairing -----------------------------------------------------
    def pairing_for(self, pixel_fragments: np.ndarray) -> np.ndarray:
        """Heavy/light pairing of a subtile's pixels: rank k with rank n-1-k."""
        fragments = np.asarray(pixel_fragments).ravel()
        expected = self.config.pixels_per_subtile
        if fragments.size < expected:
            fragments = np.pad(fragments, (0, expected - fragments.size))
        order = np.argsort(fragments)
        n = order.size
        return np.stack([order[: n // 2], order[::-1][: n // 2]], axis=1)

    # -- iteration-level scheduling --------------------------------------------------
    def schedule(
        self,
        subtile_pixel_fragments: list[np.ndarray],
        mode: SchedulingMode = SchedulingMode.BOTH,
        include_backward: bool = True,
    ) -> WSUResult:
        """Model RE cycles for an iteration's subtiles under ``mode``.

        Pairing decisions are taken from the *previous* iteration's fragment
        counts when available (inter-iteration reuse); the current counts are
        stored for the next call.
        """
        mode = SchedulingMode(mode)
        n_engines = self.config.n_rendering_engines
        reference = self._reference_fragments(subtile_pixel_fragments)

        subtile_cycles = []
        for index, fragments in enumerate(subtile_pixel_fragments):
            pairing = None
            if mode in (SchedulingMode.PAIRING, SchedulingMode.BOTH, SchedulingMode.IDEAL):
                source = reference[index] if index < len(reference) else fragments
                pairing = self.pairing_for(source)
            subtile_cycles.append(
                self.engine.subtile_cycles(fragments, pairing, include_backward)
            )
        subtile_cycles = np.asarray(subtile_cycles, dtype=np.int64)
        self._previous_fragments = [np.asarray(f).copy() for f in subtile_pixel_fragments]

        if subtile_cycles.size == 0:
            return WSUResult(0, np.zeros(n_engines, dtype=np.int64), 0.0, mode)

        if mode == SchedulingMode.IDEAL:
            per_engine = np.full(n_engines, subtile_cycles.sum() / n_engines)
        elif mode in (SchedulingMode.STREAMING, SchedulingMode.BOTH):
            per_engine = self._stream(subtile_cycles, n_engines)
        else:
            per_engine = self._static_map(subtile_cycles, n_engines)

        total = int(np.ceil(per_engine.max()))
        mean = float(per_engine.mean())
        imbalance = 0.0 if total == 0 else (total - mean) / total
        return WSUResult(total, per_engine, imbalance, mode)

    # -- internals ----------------------------------------------------------------
    def _reference_fragments(self, current: list[np.ndarray]) -> list[np.ndarray]:
        if self._previous_fragments is not None and len(self._previous_fragments) == len(current):
            return self._previous_fragments
        return current

    @staticmethod
    def _static_map(subtile_cycles: np.ndarray, n_engines: int) -> np.ndarray:
        """Fixed subtile-to-RE mapping (subtile s runs on RE s mod n)."""
        per_engine = np.zeros(n_engines, dtype=np.float64)
        for index, cycles in enumerate(subtile_cycles):
            per_engine[index % n_engines] += cycles
        return per_engine

    @staticmethod
    def _stream(subtile_cycles: np.ndarray, n_engines: int) -> np.ndarray:
        """Streaming dispatch: the next subtile goes to the earliest-free RE."""
        per_engine = np.zeros(n_engines, dtype=np.float64)
        for cycles in subtile_cycles:
            target = int(np.argmin(per_engine))
            per_engine[target] += cycles
        return per_engine
