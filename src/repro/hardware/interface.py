"""Behavioural model of the RTGS programming interface (Listing 1, Sec. 5.5).

The real plug-in exposes two C++ entry points, ``RTGS_execute`` and
``RTGS_check_status``, coordinated with the GPU SMs through shared-memory flag
buffers (``Input_done`` -> ``gradient_ready`` -> ``pruning_done``).  This module
models that handshake so the integration tests can exercise the frame-level
protocol: keyframes skip the pruning wait and update Gaussians, non-keyframes
wait for the SMs' pruning step before the optimised pose is written back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class RTGSStatus(str, Enum):
    """Execution states reported by ``RTGS_check_status``."""

    IDLE = "IDLE"
    EXECUTING = "EXECUTING"
    WAIT_PRUNING = "WAIT_PRUNING"


@dataclass
class SharedFlagBuffer:
    """The shared-memory flags used for SM <-> RTGS synchronisation."""

    input_done: bool = False
    gradient_ready: bool = False
    pruning_done: bool = False

    def reset(self) -> None:
        self.input_done = False
        self.gradient_ready = False
        self.pruning_done = False


@dataclass
class FrameTransaction:
    """Bookkeeping of one ``RTGS_execute`` call."""

    frame_id: int
    is_keyframe: bool
    status: RTGSStatus = RTGSStatus.IDLE
    pose_written_back: bool = False
    gaussians_updated: bool = False


@dataclass
class RTGSInterface:
    """Functional model of the plug-in's host-facing interface."""

    flags: SharedFlagBuffer = field(default_factory=SharedFlagBuffer)
    transactions: dict[int, FrameTransaction] = field(default_factory=dict)
    _current_frame: int | None = None

    # -- host-side calls ------------------------------------------------------
    def notify_preprocessing_done(self) -> None:
        """SMs signal that Step 1-2 (preprocessing + sorting) finished."""
        self.flags.input_done = True

    def notify_pruning_done(self) -> None:
        """SMs signal that the pruning pass over the returned gradients finished."""
        self.flags.pruning_done = True
        self._advance()

    def RTGS_execute(self, frame_id: int, is_keyframe: bool) -> FrameTransaction:
        """Trigger RTGS execution for one SLAM frame (mirrors Listing 1)."""
        if self._current_frame is not None:
            current = self.transactions[self._current_frame]
            if current.status not in (RTGSStatus.IDLE,):
                raise RuntimeError(
                    f"RTGS is busy with frame {self._current_frame} "
                    f"(status {current.status}); wait via RTGS_check_status"
                )
        if not self.flags.input_done:
            raise RuntimeError("RTGS_execute called before preprocessing/sorting completed")

        transaction = FrameTransaction(frame_id=frame_id, is_keyframe=is_keyframe)
        self.transactions[frame_id] = transaction
        self._current_frame = frame_id

        # Rendering + backpropagation happen on the plug-in, then gradients are
        # published to the SMs.
        transaction.status = RTGSStatus.EXECUTING
        self.flags.gradient_ready = True

        if is_keyframe:
            # Keyframes skip pruning and pose write-back; gradients update the map.
            transaction.gaussians_updated = True
            transaction.status = RTGSStatus.IDLE
            self._complete(transaction)
        else:
            transaction.status = RTGSStatus.WAIT_PRUNING
        return transaction

    def RTGS_check_status(self, frame_id: int, blocking: bool = False) -> RTGSStatus:
        """Report the execution status of ``frame_id``.

        With ``blocking=True`` the model resolves the outstanding pruning wait
        (as if the SMs had just finished), mirroring the host thread blocking
        until RTGS is idle.
        """
        transaction = self.transactions.get(frame_id)
        if transaction is None:
            return RTGSStatus.IDLE
        if blocking and transaction.status == RTGSStatus.WAIT_PRUNING:
            self.notify_pruning_done()
        return self.transactions[frame_id].status

    # -- internals ----------------------------------------------------------------
    def _advance(self) -> None:
        if self._current_frame is None:
            return
        transaction = self.transactions[self._current_frame]
        if transaction.status == RTGSStatus.WAIT_PRUNING and self.flags.pruning_done:
            # Non-keyframe: the optimised pose is written back to the L2 cache.
            transaction.pose_written_back = True
            transaction.status = RTGSStatus.IDLE
            self._complete(transaction)

    def _complete(self, transaction: FrameTransaction) -> None:
        self.flags.reset()
        self._current_frame = None
