"""Hardware substrate: cycle/energy models of the GPU baseline and the RTGS plug-in."""

from repro.hardware.atomic import AtomicAddModel, DISTWARModel, aggregation_reduction
from repro.hardware.config import (
    DEVICE_SPECS,
    TECHNOLOGY_SCALING,
    DeviceSpec,
    RTGSArchitectureConfig,
    scale_device,
)
from repro.hardware.energy import (
    EnergyBreakdown,
    EnergyModel,
    EnergyParameters,
    energy_efficiency_improvement,
)
from repro.hardware.gauspu import GauSPUModel, gauspu_architecture
from repro.hardware.gmu import BenesNetwork, GradientMergingUnit
from repro.hardware.gpu_model import EdgeGPUModel, GPUCostParameters, StageLatency
from repro.hardware.interface import (
    FrameTransaction,
    RTGSInterface,
    RTGSStatus,
    SharedFlagBuffer,
)
from repro.hardware.plugin import (
    RTGSFeatureFlags,
    RTGSPlugin,
    SystemEvaluation,
    evaluate_configurations,
    evaluate_system,
)
from repro.hardware.preprocessing_engine import PreprocessingEngine
from repro.hardware.rendering_engine import RBBuffer, RenderingEngine
from repro.hardware.wsu import SchedulingMode, WorkloadSchedulingUnit, WSUResult

__all__ = [
    "AtomicAddModel",
    "BenesNetwork",
    "DEVICE_SPECS",
    "DISTWARModel",
    "DeviceSpec",
    "EdgeGPUModel",
    "EnergyBreakdown",
    "EnergyModel",
    "EnergyParameters",
    "FrameTransaction",
    "GPUCostParameters",
    "GauSPUModel",
    "GradientMergingUnit",
    "PreprocessingEngine",
    "RBBuffer",
    "RTGSArchitectureConfig",
    "RTGSFeatureFlags",
    "RTGSInterface",
    "RTGSPlugin",
    "RTGSStatus",
    "RenderingEngine",
    "SchedulingMode",
    "SharedFlagBuffer",
    "StageLatency",
    "SystemEvaluation",
    "TECHNOLOGY_SCALING",
    "WSUResult",
    "WorkloadSchedulingUnit",
    "aggregation_reduction",
    "energy_efficiency_improvement",
    "evaluate_configurations",
    "evaluate_system",
    "gauspu_architecture",
    "scale_device",
]
