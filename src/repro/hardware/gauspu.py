"""GauSPU-style GPU plug-in baseline (MICRO'24), used for the Tab. 7 / Fig. 16 comparison.

GauSPU accelerates 3DGS-SLAM with a large array of rendering engines and
warp-level sparse-pixel sampling, but (per Tab. 1 of the RTGS paper):

* its pixel-redundancy detection counts Gaussians per pixel during tracking
  only and breaks down during mapping, where new Gaussians keep appearing;
* it balances workloads at the tile level only (streaming / tile merging),
  ignoring pixel-level imbalance inside a tile;
* it has no blending-BP computation reuse (no R&B buffer) and merges gradients
  less aggressively than a dedicated GMU.

The model reuses the RTGS unit models with those capabilities switched off and
a GauSPU-sized RE array, attached to the RTX 3090 host used in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.hardware.config import DEVICE_SPECS, RTGSArchitectureConfig
from repro.hardware.gpu_model import StageLatency
from repro.hardware.plugin import RTGSFeatureFlags, RTGSPlugin
from repro.slam.records import WorkloadSnapshot


def gauspu_architecture() -> RTGSArchitectureConfig:
    """GauSPU-like provisioning: many simple REs, no R&B/GMU-specific buffers."""
    return replace(
        RTGSArchitectureConfig(),
        n_rendering_engines=128 // 8,  # 128 lanes organised as 16 engines of 8 lanes
        rcs_per_re=8,
        n_preprocessing_engines=8,
        n_gmus=1,
        rb_buffer_kb=0.0,
        area_mm2=30.0,
        power_w=9.4,
    )


@dataclass
class GauSPUModel:
    """Latency/energy model of a GauSPU-accelerated GPU."""

    host_device: str = "rtx3090"
    workload_scale: float = 1.0
    tracking_pixel_sampling: float = 0.55  # fraction of pixels kept by sparse sampling

    def __post_init__(self) -> None:
        features = RTGSFeatureFlags(
            use_pipeline_balancing=True,
            use_gmu=False,
            use_rb_buffer=False,
            use_wsu=False,
            use_streaming=True,
            reuse_sorting=False,
        )
        self._plugin = RTGSPlugin(
            architecture=gauspu_architecture(),
            host_device=self.host_device,
            features=features,
            workload_scale=self.workload_scale,
        )

    def iteration_latency(self, snapshot: WorkloadSnapshot) -> StageLatency:
        latency = self._plugin.iteration_latency(snapshot)
        if snapshot.stage == "tracking":
            # Sparse pixel sampling thins the rendering / BP workload during
            # tracking (its Gaussian set is fixed), but not during mapping.
            factor = self.tracking_pixel_sampling
            latency = StageLatency(
                preprocessing=latency.preprocessing,
                sorting=latency.sorting,
                rendering=latency.rendering * factor,
                rendering_bp=latency.rendering_bp * factor,
                preprocessing_bp=latency.preprocessing_bp,
            )
        return latency

    def frame_latency(self, snapshots: list[WorkloadSnapshot]) -> StageLatency:
        total = StageLatency()
        for snapshot in snapshots:
            total = total + self.iteration_latency(snapshot)
        return total

    def frame_energy(self, snapshots: list[WorkloadSnapshot]):
        return self._plugin.frame_energy(snapshots)

    @property
    def device_power_w(self) -> float:
        return DEVICE_SPECS["gauspu"].power_w
