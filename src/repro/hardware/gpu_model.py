"""Analytical GPU cost model for the base 3DGS-SLAM implementations.

The model converts a :class:`~repro.slam.records.WorkloadSnapshot` (fragments
processed, tile/Gaussian intersection pairs, gradient updates) into per-stage
latencies for a CUDA GPU, following the proportionality the paper's profiling
establishes: Step 3 Rendering and Step 4 Rendering BP dominate, and Step 4 is
inflated by atomic-add serialisation.  Per-stage throughputs are expressed as
operations per core per cycle so the same model covers the ONX edge GPU and
the RTX 3090 by swapping the :class:`~repro.hardware.config.DeviceSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.atomic import AtomicAddModel, DISTWARModel
from repro.hardware.config import DEVICE_SPECS, DeviceSpec
from repro.hardware.energy import EnergyBreakdown, EnergyModel, EnergyParameters
from repro.slam.records import WorkloadSnapshot


@dataclass
class StageLatency:
    """Per-pipeline-stage latency of one iteration, in seconds."""

    preprocessing: float = 0.0
    sorting: float = 0.0
    rendering: float = 0.0
    rendering_bp: float = 0.0
    preprocessing_bp: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.preprocessing
            + self.sorting
            + self.rendering
            + self.rendering_bp
            + self.preprocessing_bp
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "preprocessing": self.preprocessing,
            "sorting": self.sorting,
            "rendering": self.rendering,
            "rendering_bp": self.rendering_bp,
            "preprocessing_bp": self.preprocessing_bp,
        }

    def __add__(self, other: "StageLatency") -> "StageLatency":
        return StageLatency(
            preprocessing=self.preprocessing + other.preprocessing,
            sorting=self.sorting + other.sorting,
            rendering=self.rendering + other.rendering,
            rendering_bp=self.rendering_bp + other.rendering_bp,
            preprocessing_bp=self.preprocessing_bp + other.preprocessing_bp,
        )


@dataclass(frozen=True)
class GPUCostParameters:
    """Per-item cycle costs of the CUDA kernels (per core)."""

    preprocess_cycles_per_gaussian: float = 220.0
    sort_cycles_per_pair: float = 14.0
    forward_cycles_per_fragment: float = 32.0
    backward_cycles_per_fragment: float = 78.0
    preprocess_bp_cycles_per_gaussian: float = 260.0
    pose_reduce_cycles_per_gaussian: float = 12.0
    # Fraction of the nominal core-cycles/second actually sustained by these
    # memory-bound kernels.
    utilization: float = 0.35
    # Share of Step 1 Preprocessing that is view-independent (covariance
    # assembly, opacity activation, SH/colour evaluation).  Batched mapping
    # computes it once per window, so views of a batch are charged that share
    # at 1/batch_size; the view-dependent remainder (camera transform, EWA
    # linearisation, culling) is charged in full per view.
    shared_preprocess_fraction: float = 0.6
    # Geometry-cache amortisation (repro.gaussians.geom_cache).  A cache hit
    # reuses the full Step 1-2 pipeline, paying only the epoch check and the
    # buffer handoff; a refresh/incremental render additionally gathers fresh
    # per-Gaussian colours/opacities (a fraction of Step 1) while still
    # skipping Step 2 sorting entirely.
    cache_hit_step12_fraction: float = 0.03
    cache_splice_preprocess_fraction: float = 0.15
    # Sharded-backend amortisation (repro.engine.sharded).  The fragment-
    # parallel stages — Step 3 Rendering and Step 4 Rendering BP — execute
    # concurrently across shard workers, so a view of a sharded batch is
    # charged 1 / (1 + e * (workers - 1)) of them: linear scaling damped by
    # an efficiency factor covering dispatch, stitch and memory-bandwidth
    # sharing.  Step 1-2 (planned serially in the parent) and Step 5 (fused
    # in the parent) are charged in full.
    shard_parallel_efficiency: float = 0.85


class EdgeGPUModel:
    """Latency + energy model of a base algorithm running on a CUDA GPU."""

    def __init__(
        self,
        device: DeviceSpec | str = "onx",
        parameters: GPUCostParameters | None = None,
        use_distwar: bool = False,
        workload_scale: float = 1.0,
    ):
        if isinstance(device, str):
            device = DEVICE_SPECS[device]
        self.device = device
        self.parameters = parameters or GPUCostParameters()
        self.use_distwar = use_distwar
        self.workload_scale = float(workload_scale)
        self._atomic = AtomicAddModel()
        self._distwar = DISTWARModel()
        self.energy_model = EnergyModel(
            EnergyParameters.for_technology(device.technology_nm),
            static_power_w=device.power_w,
        )

    # -- latency ------------------------------------------------------------------
    def _seconds(self, cycles: float) -> float:
        utilization = getattr(self.device, "kernel_utilization", self.parameters.utilization)
        throughput = self.device.n_cores * self.device.frequency_ghz * 1e9 * utilization
        return cycles / throughput

    def iteration_latency(self, snapshot: WorkloadSnapshot) -> StageLatency:
        """Per-stage latency of one tracking/mapping iteration."""
        params = self.parameters
        scale = self.workload_scale
        n_projected = snapshot.n_projected * scale
        n_pairs = snapshot.n_tile_pairs * scale
        fragments = snapshot.total_fragments * scale
        updates = snapshot.total_pixel_level_updates * scale

        preprocessing = n_projected * params.preprocess_cycles_per_gaussian
        if snapshot.batch_size > 1:
            # Per-view snapshot of a batched mapping window: the
            # view-independent share of Step 1 was computed once for the
            # whole window, so each view carries 1/batch_size of it.
            shared = params.shared_preprocess_fraction
            preprocessing *= (1.0 - shared) + shared / snapshot.batch_size
        sorting = n_pairs * params.sort_cycles_per_pair * max(np.log2(max(n_pairs, 2)), 1.0)
        if snapshot.cache_status == "hit":
            # Step 1-2 served from the geometry cache: only revalidation cost.
            preprocessing *= params.cache_hit_step12_fraction
            sorting *= params.cache_hit_step12_fraction
        elif snapshot.cache_status in ("refresh", "incremental"):
            # Cached geometry with a fresh appearance gather; sorting and
            # tiling are reused wholesale.
            preprocessing *= params.cache_splice_preprocess_fraction
            sorting *= params.cache_hit_step12_fraction
        rendering = fragments * params.forward_cycles_per_fragment

        rendering_bp = 0.0
        preprocessing_bp = 0.0
        if snapshot.includes_backward:
            rendering_bp = updates * params.backward_cycles_per_fragment
            aggregator = self._distwar if self.use_distwar else self._atomic
            rendering_bp += aggregator.aggregation_cycles(snapshot) * scale
            preprocessing_bp = n_projected * params.preprocess_bp_cycles_per_gaussian
            if snapshot.stage == "tracking":
                preprocessing_bp += n_projected * params.pose_reduce_cycles_per_gaussian

        if snapshot.shard_workers > 1:
            # Sharded batch: the per-fragment stages of this view overlapped
            # with the other shards' views, so they cost 1/denominator of
            # their serial latency; at most one worker per view helps.
            parallel = min(snapshot.shard_workers, max(snapshot.batch_size, 1))
            denominator = 1.0 + params.shard_parallel_efficiency * (parallel - 1)
            rendering /= denominator
            rendering_bp /= denominator

        # Atomic serialisation stalls the whole SM, so it does not parallelise
        # across cores the way the other terms do; approximate by charging it
        # at reduced effective parallelism.
        return StageLatency(
            preprocessing=self._seconds(preprocessing),
            sorting=self._seconds(sorting),
            rendering=self._seconds(rendering),
            rendering_bp=self._seconds(rendering_bp),
            preprocessing_bp=self._seconds(preprocessing_bp),
        )

    def frame_latency(self, snapshots: list[WorkloadSnapshot]) -> StageLatency:
        """Total per-stage latency over all iterations of one frame."""
        total = StageLatency()
        for snapshot in snapshots:
            total = total + self.iteration_latency(snapshot)
        return total

    # -- energy ---------------------------------------------------------------------
    def iteration_energy(self, snapshot: WorkloadSnapshot) -> EnergyBreakdown:
        """Energy of one iteration: dynamic op/memory energy + static power x latency."""
        latency = self.iteration_latency(snapshot).total
        scale = self.workload_scale
        fragments = snapshot.total_fragments * scale
        updates = snapshot.total_pixel_level_updates * scale
        n_projected = snapshot.n_projected * scale
        compute_ops = fragments * 40 + updates * 90 + n_projected * 300
        # GPU gradient aggregation bounces through L2/DRAM; rendering streams
        # Gaussian parameters from DRAM each iteration.
        l2_accesses = fragments * 2 + updates * 3
        dram_accesses = n_projected * 14 + updates * 1.5
        return self.energy_model.energy(
            compute_ops=compute_ops,
            sram_accesses=fragments,
            l2_accesses=l2_accesses,
            dram_accesses=dram_accesses,
            latency_s=latency,
        )

    def frame_energy(self, snapshots: list[WorkloadSnapshot]) -> EnergyBreakdown:
        total = EnergyBreakdown()
        for snapshot in snapshots:
            total = total + self.iteration_energy(snapshot)
        return total
