"""Energy model for the GPU baseline and the RTGS plug-in.

Per-frame energy is the sum of a dynamic part (arithmetic operations and
memory accesses, each charged a per-event energy that depends on where the
data lives) and a static part (device power integrated over the frame
latency).  The per-event energies follow the usual 28/8 nm ballpark figures
used in accelerator papers; the *relative* energy efficiency between devices -
the quantity Fig. 15(b) reports - is dominated by the latency reduction and
the replacement of DRAM/L2 traffic by small dedicated SRAMs, both of which the
model captures explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyParameters:
    """Per-event energies in Joules."""

    mac_energy: float = 2.0e-12
    sram_access_energy: float = 5.0e-12
    l2_access_energy: float = 2.5e-11
    dram_access_energy: float = 2.0e-10

    @staticmethod
    def for_technology(technology_nm: int) -> "EnergyParameters":
        """Scale the default 28 nm energies to another node."""
        scale = {28: 1.0, 12: 0.55, 8: 0.4}.get(technology_nm, 1.0)
        base = EnergyParameters()
        return EnergyParameters(
            mac_energy=base.mac_energy * scale,
            sram_access_energy=base.sram_access_energy * scale,
            l2_access_energy=base.l2_access_energy * scale,
            dram_access_energy=base.dram_access_energy * scale,
        )


@dataclass
class EnergyBreakdown:
    """Energy of one frame, split by source."""

    compute_j: float = 0.0
    sram_j: float = 0.0
    l2_j: float = 0.0
    dram_j: float = 0.0
    static_j: float = 0.0

    @property
    def total_j(self) -> float:
        return self.compute_j + self.sram_j + self.l2_j + self.dram_j + self.static_j

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            compute_j=self.compute_j + other.compute_j,
            sram_j=self.sram_j + other.sram_j,
            l2_j=self.l2_j + other.l2_j,
            dram_j=self.dram_j + other.dram_j,
            static_j=self.static_j + other.static_j,
        )


class EnergyModel:
    """Turns operation/access counts plus latency into an energy estimate."""

    def __init__(self, parameters: EnergyParameters | None = None, static_power_w: float = 10.0):
        self.parameters = parameters or EnergyParameters()
        self.static_power_w = float(static_power_w)

    def energy(
        self,
        compute_ops: float,
        sram_accesses: float = 0.0,
        l2_accesses: float = 0.0,
        dram_accesses: float = 0.0,
        latency_s: float = 0.0,
    ) -> EnergyBreakdown:
        """Energy of a workload chunk described by its event counts."""
        params = self.parameters
        return EnergyBreakdown(
            compute_j=compute_ops * params.mac_energy,
            sram_j=sram_accesses * params.sram_access_energy,
            l2_j=l2_accesses * params.l2_access_energy,
            dram_j=dram_accesses * params.dram_access_energy,
            static_j=self.static_power_w * latency_s,
        )


def energy_efficiency_improvement(baseline_j: float, optimized_j: float) -> float:
    """Energy-per-frame ratio (``x`` improvement), as reported in Fig. 15(b)."""
    if optimized_j <= 0:
        return float("inf")
    return baseline_j / optimized_j
