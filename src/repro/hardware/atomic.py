"""Gradient-aggregation cost models: GPU atomic adds and DISTWAR warp merging.

Step 4 Rendering BP aggregates pixel-level Gaussian gradients into
Gaussian-level gradients with atomic adds; when many pixels update the same
Gaussian the updates serialise (Observation 4).  ``AtomicAddModel`` charges
one update per pixel-level contribution plus a serialisation penalty that
grows with the *maximum* per-Gaussian collision count within a tile (the
longest serialised chain dominates the SIMT stall).  ``DISTWARModel`` applies
warp-level pre-reduction: contributions from the same Gaussian that land in
one 32-thread warp are merged before the atomic, which helps dense scenes but
loses effectiveness when Gaussians are scattered - exactly the paper's
criticism of DISTWAR for SLAM workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.slam.records import WorkloadSnapshot


@dataclass(frozen=True)
class AtomicAddModel:
    """Serialised atomic-add cost for Gaussian gradient aggregation."""

    cycles_per_update: float = 2.0
    conflict_penalty_cycles: float = 24.0
    warp_size: int = 32

    def aggregation_cycles(self, snapshot: WorkloadSnapshot) -> float:
        """Total aggregation cycles of one backward pass on the GPU."""
        total = 0.0
        for counts in snapshot.per_tile_update_counts:
            if counts.size == 0:
                continue
            updates = float(counts.sum())
            # The longest per-Gaussian chain serialises its warp repeatedly.
            worst_chain = float(counts.max())
            total += updates * self.cycles_per_update
            total += worst_chain * self.conflict_penalty_cycles
        return total


@dataclass(frozen=True)
class DISTWARModel:
    """Warp-level gradient merging (DISTWAR) on top of the atomic baseline."""

    cycles_per_update: float = 2.0
    conflict_penalty_cycles: float = 24.0
    warp_size: int = 32
    merge_overhead_cycles: float = 4.0

    def aggregation_cycles(self, snapshot: WorkloadSnapshot) -> float:
        """Aggregation cycles when warps pre-reduce same-Gaussian updates."""
        total = 0.0
        for counts in snapshot.per_tile_update_counts:
            if counts.size == 0:
                continue
            updates = float(counts.sum())
            n_gaussians = counts.size
            # Fragments of one tile are laid out pixel-major, so a warp of 32
            # threads touches ~warp_size fragments; merging collapses updates
            # to one per distinct Gaussian present in the warp.  The expected
            # reduction factor is therefore bounded by the mean number of
            # same-Gaussian duplicates per warp, which shrinks as Gaussians
            # become sparser (more distinct Gaussians per warp).
            mean_updates_per_gaussian = updates / n_gaussians
            duplicates_per_warp = min(mean_updates_per_gaussian, self.warp_size)
            reduction = max(duplicates_per_warp, 1.0)
            merged_updates = updates / reduction
            worst_chain = float(counts.max()) / reduction
            total += merged_updates * self.cycles_per_update
            total += worst_chain * self.conflict_penalty_cycles
            total += (updates / self.warp_size) * self.merge_overhead_cycles
        return total


def aggregation_reduction(snapshot: WorkloadSnapshot) -> dict[str, float]:
    """Convenience comparison of aggregation cycles across the three schemes."""
    from repro.hardware.gmu import GradientMergingUnit

    atomic = AtomicAddModel().aggregation_cycles(snapshot)
    distwar = DISTWARModel().aggregation_cycles(snapshot)
    gmu = GradientMergingUnit().merging_cycles(snapshot)
    return {
        "atomic": atomic,
        "distwar": distwar,
        "gmu": gmu,
        "distwar_reduction": 1.0 - distwar / atomic if atomic > 0 else 0.0,
        "gmu_reduction": 1.0 - gmu / atomic if atomic > 0 else 0.0,
    }
