"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` falls back to the legacy editable-install path on
offline machines that lack the ``wheel`` package required by PEP 660 builds.
"""

from setuptools import setup

setup()
